package datagen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/sqlparse"
)

func TestLogTableDeterministicAndBounded(t *testing.T) {
	cols := TestLogColumns()
	a := LogTable(1000, cols, 42)
	b := LogTable(1000, cols, 42)
	if !a.Equal(b) {
		t.Error("same seed must give same table")
	}
	c := LogTable(1000, cols, 43)
	if a.Equal(c) {
		t.Error("different seeds should differ")
	}
	if len(a.Rows) != 1000 || len(a.Schema) != 4 {
		t.Fatalf("shape = %d rows, %d cols", len(a.Rows), len(a.Schema))
	}
	for _, row := range a.Rows {
		if row[0].I < 0 || row[0].I >= 1000 {
			t.Fatalf("A out of domain: %v", row[0])
		}
		if row[1].I < 0 || row[1].I >= 500 {
			t.Fatalf("B out of domain: %v", row[1])
		}
	}
}

func TestCatalogForScaling(t *testing.T) {
	w := SmallWorkload("s", `R = EXTRACT A FROM "test.log" USING E; OUTPUT R TO "o";`, 100, 1000, 1)
	ts := w.Cat.Table("test.log")
	if ts.Rows != 100_000 {
		t.Errorf("scaled rows = %d, want 100000", ts.Rows)
	}
	tab, ok := w.FS.Get("test.log")
	if !ok || len(tab.Rows) != 100 {
		t.Errorf("physical rows = %v", tab)
	}
}

// countOps builds the workload script and reports the size of the
// initial operator DAG plus the shared-group fan-outs after Alg. 1.
func countOps(t *testing.T, w *Workload) (ops int, fanouts []int) {
	t.Helper()
	m, err := logical.BuildSource(w.Script, w.Cat)
	if err != nil {
		t.Fatalf("%s does not bind: %v", w.Name, err)
	}
	ops = len(m.Groups())
	shared := core.IdentifyCommonSubexpressions(m)
	for _, s := range shared {
		fanouts = append(fanouts, len(m.Parents(memo.GroupID(s))))
	}
	return ops, fanouts
}

func TestLS1ShapeMatchesPaper(t *testing.T) {
	w := LargeScript1()
	ops, fanouts := countOps(t, w)
	// Paper: 101 operators in the initial operator DAG, 4 shared
	// groups, 3 with two consumers and 1 with three.
	if ops != 101 {
		t.Errorf("LS1 operators = %d, want 101", ops)
	}
	if len(fanouts) != 4 {
		t.Fatalf("LS1 shared groups = %d, want 4", len(fanouts))
	}
	twos, threes := 0, 0
	for _, f := range fanouts {
		switch f {
		case 2:
			twos++
		case 3:
			threes++
		default:
			t.Errorf("unexpected fan-out %d", f)
		}
	}
	if twos != 3 || threes != 1 {
		t.Errorf("LS1 fan-outs = %v, want 3×2 + 1×3", fanouts)
	}
	if w.BudgetSeconds != 30 {
		t.Errorf("LS1 budget = %d, want 30", w.BudgetSeconds)
	}
}

func TestLS2ShapeMatchesPaper(t *testing.T) {
	w := LargeScript2()
	ops, fanouts := countOps(t, w)
	// Paper: 1034 operators, 17 shared groups, 15×2 + 1×4 + 1×5.
	if ops != 1034 {
		t.Errorf("LS2 operators = %d, want 1034", ops)
	}
	if len(fanouts) != 17 {
		t.Fatalf("LS2 shared groups = %d, want 17", len(fanouts))
	}
	count := map[int]int{}
	for _, f := range fanouts {
		count[f]++
	}
	if count[2] != 15 || count[4] != 1 || count[5] != 1 {
		t.Errorf("LS2 fan-outs = %v, want 15×2 + 1×4 + 1×5", fanouts)
	}
	if w.BudgetSeconds != 60 {
		t.Errorf("LS2 budget = %d, want 60", w.BudgetSeconds)
	}
}

func TestLargeScriptInputsRegistered(t *testing.T) {
	w := LargeScript1()
	if len(w.FS.Paths()) == 0 {
		t.Fatal("no input files generated")
	}
	for _, p := range w.FS.Paths() {
		if !w.Cat.Has(p) {
			t.Errorf("file %q missing from catalog", p)
		}
	}
}

func TestLargeScriptCustomShape(t *testing.T) {
	shape := LSShape{
		Name:          "tiny",
		TargetOps:     40,
		SharedFanouts: []int{2, 2},
		PhysRows:      50,
		StatScale:     10,
		Seed:          5,
	}
	ops, fanouts := countOps(t, LargeScript(shape))
	if ops != 40 {
		t.Errorf("custom ops = %d, want 40", ops)
	}
	if len(fanouts) != 2 {
		t.Errorf("custom shared = %v", fanouts)
	}
	// A deficit too small for a chain must be absorbed exactly via
	// pre-projections: core = 1 + 2*(2+4) = 13, so target 14 and 15
	// exercise the remainder path.
	for _, target := range []int{13, 14, 15} {
		shape.TargetOps = target
		ops, _ := countOps(t, LargeScript(shape))
		if ops != target {
			t.Errorf("target %d: ops = %d", target, ops)
		}
	}
}

// TestRandomScriptsFormatRoundTrip: every generated script parses,
// formats idempotently, and the formatted text binds to the same
// number of memo groups as the original.
func TestRandomScriptsFormatRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		w := RandomWorkload(seed, 10)
		s1, err := sqlparse.Parse(w.Script)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, w.Script)
		}
		once := sqlparse.Format(s1)
		s2, err := sqlparse.Parse(once)
		if err != nil {
			t.Fatalf("seed %d: formatted does not parse: %v\n%s", seed, err, once)
		}
		if twice := sqlparse.Format(s2); twice != once {
			t.Fatalf("seed %d: formatting not idempotent", seed)
		}
		m1, err := logical.BuildSource(w.Script, w.Cat)
		if err != nil {
			t.Fatalf("seed %d: original does not bind: %v", seed, err)
		}
		m2, err := logical.BuildSource(once, w.Cat)
		if err != nil {
			t.Fatalf("seed %d: formatted does not bind: %v\n%s", seed, err, once)
		}
		if len(m1.Groups()) != len(m2.Groups()) {
			t.Errorf("seed %d: groups %d vs %d after formatting", seed, len(m1.Groups()), len(m2.Groups()))
		}
	}
}
