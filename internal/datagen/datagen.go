// Package datagen produces the synthetic inputs of the experiments:
// log-style tables with controlled per-column cardinalities (standing
// in for the paper's test.log), their statistics catalogs, and —
// because the paper's LS1/LS2 production scripts are proprietary —
// generated SCOPE scripts matching the published shapes of those
// scripts (operator counts, shared-group counts, consumer fan-outs).
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/exec"
	"repro/internal/relop"
	"repro/internal/stats"
)

// ColumnSpec describes one generated column.
type ColumnSpec struct {
	Name string
	// Distinct is the number of distinct values drawn (uniformly).
	Distinct int64
}

// LogTable generates a deterministic table of the given row count
// whose columns draw uniformly from their distinct domains.
func LogTable(rows int64, cols []ColumnSpec, seed int64) *exec.Table {
	r := rand.New(rand.NewSource(seed))
	schema := make(relop.Schema, len(cols))
	for i, c := range cols {
		schema[i] = relop.Column{Name: c.Name, Type: relop.TInt}
	}
	t := &exec.Table{Schema: schema}
	for i := int64(0); i < rows; i++ {
		row := make(relop.Row, len(cols))
		for j, c := range cols {
			d := c.Distinct
			if d <= 0 {
				d = rows
			}
			row[j] = relop.IntVal(r.Int63n(d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// CatalogFor registers accurate statistics for the generated table
// under path, optionally scaled: ScaledStats lets the optimizer see
// the table as `scale` times larger than the physical data, so
// experiments can execute on laptop-sized data while the optimizer
// prices cluster-sized work (documented substitution for the paper's
// terabyte inputs).
func CatalogFor(cat *stats.Catalog, path string, rows int64, cols []ColumnSpec, scale int64) {
	if scale <= 0 {
		scale = 1
	}
	ts := &stats.TableStats{Rows: rows * scale, Columns: map[string]stats.ColumnStats{}}
	for _, c := range cols {
		d := c.Distinct
		if d <= 0 {
			d = rows * scale
		}
		ts.Columns[c.Name] = stats.ColumnStats{Distinct: d, AvgBytes: 8}
	}
	cat.Put(path, ts)
}

// TestLogColumns is the column profile of the paper's motivating
// test.log: grouping columns A, B, C with moderate cardinalities and
// a measure column D.
func TestLogColumns() []ColumnSpec {
	return []ColumnSpec{
		{Name: "A", Distinct: 1_000},
		{Name: "B", Distinct: 500},
		{Name: "C", Distinct: 2_000},
		{Name: "D", Distinct: 1 << 40},
	}
}

// MicroScriptColumns is the column profile used for the S1–S4
// evaluation workloads: higher grouping cardinalities so the shared
// aggregation's output is a substantial fraction of its input, which
// keeps the spool and consumer work non-negligible (the savings
// fractions then land on the paper's Fig. 7 values).
func MicroScriptColumns() []ColumnSpec {
	return []ColumnSpec{
		{Name: "A", Distinct: 20_000},
		{Name: "B", Distinct: 5_000},
		{Name: "C", Distinct: 50_000},
		{Name: "D", Distinct: 1 << 40},
	}
}

// Workload bundles a script with its physical data and catalog.
type Workload struct {
	Name   string
	Script string
	FS     *exec.FileStore
	Cat    *stats.Catalog
	// Budget, when non-zero, is the optimization budget the paper
	// used for this script.
	BudgetSeconds int
}

// SmallWorkload builds one of the paper's S1–S4 micro-scripts with
// physical data of physRows rows and statistics scaled by statScale,
// using the TestLogColumns profile.
func SmallWorkload(name, script string, physRows, statScale int64, seed int64) *Workload {
	return SmallWorkloadCols(name, script, physRows, statScale, seed, TestLogColumns())
}

// SmallWorkloadCols is SmallWorkload with an explicit column profile.
func SmallWorkloadCols(name, script string, physRows, statScale, seed int64, cols []ColumnSpec) *Workload {
	fs := exec.NewFileStore()
	cat := stats.NewCatalog()
	for _, f := range []string{"test.log", "test2.log"} {
		fs.Put(f, LogTable(physRows, cols, seed))
		CatalogFor(cat, f, physRows, cols, statScale)
		seed++
	}
	return &Workload{Name: name, Script: script, FS: fs, Cat: cat}
}

// fileName returns the i-th generated input path.
func fileName(i int) string { return fmt.Sprintf("logs/input%02d.log", i) }
