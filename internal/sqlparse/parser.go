package sqlparse

import "strings"

// Parser consumes a token stream into a Script AST.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a full SCOPE script.
func Parse(src string) (*Script, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseScript()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) accept(k TokKind) (Token, bool) {
	if p.cur().Kind == k {
		return p.next(), true
	}
	return Token{}, false
}

func (p *Parser) expect(k TokKind, what string) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return Token{}, errf(t.Line, t.Col, "expected %s (%s), found %q", k, what, t.Text)
	}
	return p.next(), nil
}

func (p *Parser) parseScript() (*Script, error) {
	s := &Script{}
	for p.cur().Kind != TokEOF {
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Stmts = append(s.Stmts, st)
	}
	if len(s.Stmts) == 0 {
		return nil, errf(1, 1, "empty script")
	}
	return s, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TokOutput:
		return p.parseOutput()
	case TokIdent:
		return p.parseAssign()
	default:
		return nil, errf(t.Line, t.Col, "expected assignment or OUTPUT, found %q", t.Text)
	}
}

// parseOutput parses: OUTPUT name TO "path" ;
func (p *Parser) parseOutput() (Stmt, error) {
	kw := p.next()
	name, err := p.expect(TokIdent, "result name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokTo, "TO"); err != nil {
		return nil, err
	}
	path, err := p.expect(TokString, "output path")
	if err != nil {
		return nil, err
	}
	out := &OutputStmt{Src: name.Text, Path: path.Text, Tok: kw}
	if _, ok := p.accept(TokOrder); ok {
		if _, err := p.expect(TokBy, "BY after ORDER"); err != nil {
			return nil, err
		}
		for {
			ref, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: *ref}
			if _, ok := p.accept(TokDesc); ok {
				item.Desc = true
			} else {
				p.accept(TokAsc)
			}
			out.OrderBy = append(out.OrderBy, item)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
	}
	if _, err := p.expect(TokSemi, "; after OUTPUT"); err != nil {
		return nil, err
	}
	return out, nil
}

// parseAssign parses: name = (EXTRACT ... | SELECT ...) ;
func (p *Parser) parseAssign() (Stmt, error) {
	name := p.next()
	if _, err := p.expect(TokEq, "= after result name"); err != nil {
		return nil, err
	}
	var q Query
	var err error
	switch p.cur().Kind {
	case TokExtract:
		q, err = p.parseExtract()
	case TokSelect:
		q, err = p.parseSelect()
	case TokUnion:
		q, err = p.parseUnion()
	default:
		t := p.cur()
		return nil, errf(t.Line, t.Col, "expected EXTRACT, SELECT, or UNION, found %q", t.Text)
	}
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi, "; after statement"); err != nil {
		return nil, err
	}
	return &AssignStmt{Name: name.Text, Query: q, Tok: name}, nil
}

// parseExtract parses: EXTRACT A,B:int,... FROM "path" USING Extractor
func (p *Parser) parseExtract() (Query, error) {
	p.next() // EXTRACT
	var cols []ColDef
	for {
		id, err := p.expect(TokIdent, "column name")
		if err != nil {
			return nil, err
		}
		cd := ColDef{Name: id.Text}
		if _, ok := p.accept(TokColon); ok {
			ty, err := p.expect(TokIdent, "column type")
			if err != nil {
				return nil, err
			}
			switch strings.ToLower(ty.Text) {
			case "int", "long", "float", "double", "string":
				cd.Type = strings.ToLower(ty.Text)
			default:
				return nil, errf(ty.Line, ty.Col, "unknown column type %q", ty.Text)
			}
		}
		cols = append(cols, cd)
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	if _, err := p.expect(TokFrom, "FROM"); err != nil {
		return nil, err
	}
	path, err := p.expect(TokString, "input path")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokUsing, "USING"); err != nil {
		return nil, err
	}
	ex, err := p.expect(TokIdent, "extractor name")
	if err != nil {
		return nil, err
	}
	return &ExtractQuery{Cols: cols, Path: path.Text, Extractor: ex.Text}, nil
}

// parseUnion parses: UNION ALL name, name [, name...]
func (p *Parser) parseUnion() (Query, error) {
	kw := p.next() // UNION
	if _, err := p.expect(TokAll, "ALL after UNION (only UNION ALL is supported)"); err != nil {
		return nil, err
	}
	q := &UnionQuery{Tok: kw}
	for {
		src, err := p.expect(TokIdent, "source name")
		if err != nil {
			return nil, err
		}
		q.Sources = append(q.Sources, src.Text)
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	if len(q.Sources) < 2 {
		return nil, errf(kw.Line, kw.Col, "UNION ALL needs at least two sources")
	}
	return q, nil
}

// parseSelect parses:
//
//	SELECT item, ... FROM src [, src] [WHERE pred] [GROUP BY col, ...]
func (p *Parser) parseSelect() (Query, error) {
	p.next() // SELECT
	q := &SelectQuery{}
	if _, ok := p.accept(TokDistinct); ok {
		q.Distinct = true
	}
	for {
		it, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, it)
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	if _, err := p.expect(TokFrom, "FROM"); err != nil {
		return nil, err
	}
	for {
		src, err := p.expect(TokIdent, "source name")
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, src.Text)
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	if _, ok := p.accept(TokWhere); ok {
		pred, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = pred
	}
	if _, ok := p.accept(TokGroup); ok {
		if _, err := p.expect(TokBy, "BY after GROUP"); err != nil {
			return nil, err
		}
		for {
			ref, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, *ref)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
		if _, ok := p.accept(TokHaving); ok {
			pred, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.Having = pred
		}
	} else if p.cur().Kind == TokHaving {
		t := p.cur()
		return nil, errf(t.Line, t.Col, "HAVING requires GROUP BY")
	}
	return q, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	tok := p.cur()
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	it := SelectItem{Expr: e, Tok: tok}
	if _, ok := p.accept(TokAs); ok {
		alias, err := p.expect(TokIdent, "alias")
		if err != nil {
			return SelectItem{}, err
		}
		it.As = alias.Text
	} else if p.cur().Kind == TokIdent {
		// Bare alias: "Sum(D) S" style is not in the paper; reject to
		// keep errors clear — require AS.
		t := p.cur()
		return SelectItem{}, errf(t.Line, t.Col, "expected AS before alias %q", t.Text)
	}
	return it, nil
}

func (p *Parser) parseColRef() (*ColRefAST, error) {
	id, err := p.expect(TokIdent, "column name")
	if err != nil {
		return nil, err
	}
	ref := &ColRefAST{Name: id.Text, Tok: id}
	if _, ok := p.accept(TokDot); ok {
		col, err := p.expect(TokIdent, "column after qualifier")
		if err != nil {
			return nil, err
		}
		ref.Qualifier = id.Text
		ref.Name = col.Text
	}
	return ref, nil
}

// Expression grammar, lowest precedence first:
//
//	expr   := orE
//	orE    := andE (OR andE)*
//	andE   := cmpE (AND cmpE)*
//	cmpE   := addE ((= | != | < | <= | > | >=) addE)?
//	addE   := mulE ((+|-) mulE)*
//	mulE   := unary ((*|/) unary)*
//	unary  := - unary | primary
//	primary:= number | string | ident[(args)] | qualified col | ( expr )
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		tok, ok := p.accept(TokOr)
		if !ok {
			return l, nil
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r, Tok: tok}
	}
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for {
		tok, ok := p.accept(TokAnd)
		if !ok {
			return l, nil
		}
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r, Tok: tok}
	}
}

var cmpOps = map[TokKind]string{
	TokEq: "=", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		tok := p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, L: l, R: r, Tok: tok}, nil
	}
	return l, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().Kind {
		case TokPlus:
			op = "+"
		case TokMinus:
			op = "-"
		default:
			return l, nil
		}
		tok := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r, Tok: tok}
	}
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().Kind {
		case TokStar:
			op = "*"
		case TokSlash:
			op = "/"
		default:
			return l, nil
		}
		tok := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r, Tok: tok}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if tok, ok := p.accept(TokMinus); ok {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "-", L: &NumberLit{Text: "0", IsInt: true, Tok: tok}, R: e, Tok: tok}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		return &NumberLit{Text: t.Text, IsInt: !strings.Contains(t.Text, "."), Tok: t}, nil
	case TokString:
		p.next()
		return &StringLit{Val: t.Text, Tok: t}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ") to close ("); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		p.next()
		switch p.cur().Kind {
		case TokLParen:
			p.next()
			call := &CallExpr{Name: t.Text, Tok: t}
			if p.cur().Kind != TokRParen {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if _, ok := p.accept(TokComma); !ok {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen, ") to close call"); err != nil {
				return nil, err
			}
			return call, nil
		case TokDot:
			p.next()
			col, err := p.expect(TokIdent, "column after qualifier")
			if err != nil {
				return nil, err
			}
			return &ColRefAST{Qualifier: t.Text, Name: col.Text, Tok: t}, nil
		default:
			return &ColRefAST{Name: t.Text, Tok: t}, nil
		}
	default:
		return nil, errf(t.Line, t.Col, "expected expression, found %q", t.Text)
	}
}
