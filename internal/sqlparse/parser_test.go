package sqlparse

import (
	"strings"
	"testing"
)

// scriptS1 is the paper's motivating script (Sec. I / Fig. 6 S1).
const scriptS1 = `
R0 = EXTRACT A,B,C,D FROM "...\test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
`

func TestParseS1(t *testing.T) {
	s, err := Parse(scriptS1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Stmts) != 6 {
		t.Fatalf("got %d statements, want 6", len(s.Stmts))
	}
	a0, ok := s.Stmts[0].(*AssignStmt)
	if !ok || a0.Name != "R0" {
		t.Fatalf("stmt 0 = %#v", s.Stmts[0])
	}
	ex, ok := a0.Query.(*ExtractQuery)
	if !ok {
		t.Fatalf("stmt 0 query = %#v", a0.Query)
	}
	if ex.Path != `...\test.log` || ex.Extractor != "LogExtractor" {
		t.Errorf("extract = %+v", ex)
	}
	if len(ex.Cols) != 4 || ex.Cols[0].Name != "A" || ex.Cols[3].Name != "D" {
		t.Errorf("extract cols = %+v", ex.Cols)
	}

	a1 := s.Stmts[1].(*AssignStmt)
	sel, ok := a1.Query.(*SelectQuery)
	if !ok {
		t.Fatalf("stmt 1 query = %#v", a1.Query)
	}
	if len(sel.Items) != 4 {
		t.Fatalf("select items = %d", len(sel.Items))
	}
	if sel.Items[3].As != "S" || !IsAggCall(sel.Items[3].Expr) {
		t.Errorf("item 3 = %+v", sel.Items[3])
	}
	if len(sel.From) != 1 || sel.From[0] != "R0" {
		t.Errorf("from = %v", sel.From)
	}
	if len(sel.GroupBy) != 3 || sel.GroupBy[2].Name != "C" {
		t.Errorf("group by = %+v", sel.GroupBy)
	}

	out := s.Stmts[4].(*OutputStmt)
	if out.Src != "R1" || out.Path != "result1.out" {
		t.Errorf("output = %+v", out)
	}
}

func TestParseJoinWithQualifiedRefs(t *testing.T) {
	// From the paper's S3: join with qualified column references.
	src := `
R1 = EXTRACT B,S1 FROM "a" USING X;
R2 = EXTRACT B,S2 FROM "b" USING X;
RR = SELECT R1.B, S1, S2 FROM R1, R2 WHERE R1.B = R2.B;
OUTPUT RR TO "o";
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.Stmts[2].(*AssignStmt).Query.(*SelectQuery)
	if len(sel.From) != 2 {
		t.Fatalf("from = %v", sel.From)
	}
	ref := sel.Items[0].Expr.(*ColRefAST)
	if ref.Qualifier != "R1" || ref.Name != "B" {
		t.Errorf("qualified ref = %+v", ref)
	}
	w, ok := sel.Where.(*BinaryExpr)
	if !ok || w.Op != "=" {
		t.Fatalf("where = %#v", sel.Where)
	}
	l := w.L.(*ColRefAST)
	r := w.R.(*ColRefAST)
	if l.Qualifier != "R1" || r.Qualifier != "R2" {
		t.Errorf("join predicate refs = %v, %v", l, r)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	src := `X = SELECT A + B * C as V FROM R WHERE A > 1 AND B < 2 OR C = 3;`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.Stmts[0].(*AssignStmt).Query.(*SelectQuery)
	if got := sel.Items[0].Expr.String(); got != "(A + (B * C))" {
		t.Errorf("precedence: %s", got)
	}
	// OR binds loosest.
	if got := sel.Where.String(); got != "(((A > 1) AND (B < 2)) OR (C = 3))" {
		t.Errorf("boolean precedence: %s", got)
	}
}

func TestParseTypedExtract(t *testing.T) {
	src := `R = EXTRACT A:int, B:string, C:float FROM "f" USING X;
OUTPUT R TO "o";`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ex := s.Stmts[0].(*AssignStmt).Query.(*ExtractQuery)
	if ex.Cols[0].Type != "int" || ex.Cols[1].Type != "string" || ex.Cols[2].Type != "float" {
		t.Errorf("typed cols = %+v", ex.Cols)
	}
	if _, err := Parse(`R = EXTRACT A:blob FROM "f" USING X;`); err == nil {
		t.Error("unknown type should error")
	}
}

func TestParseComments(t *testing.T) {
	src := `// leading comment
R = EXTRACT A FROM "f" USING X; /* block
comment */ OUTPUT R TO "o"; // trailing`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(s.Stmts))
	}
	if _, err := Parse(`R = EXTRACT A FROM "f" USING X; /* unterminated`); err == nil {
		t.Error("unterminated comment should error")
	}
}

func TestParseCountAndNoArgCalls(t *testing.T) {
	src := `R = SELECT A, Count() as N, Min(B) as M FROM T GROUP BY A;
OUTPUT R TO "o";`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.Stmts[0].(*AssignStmt).Query.(*SelectQuery)
	c := sel.Items[1].Expr.(*CallExpr)
	if c.Name != "Count" || len(c.Args) != 0 {
		t.Errorf("count call = %+v", c)
	}
	if !IsAggCall(sel.Items[2].Expr) {
		t.Error("Min should be an aggregate call")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{``, "empty script"},
		{`R = SELECT A FROM;`, "source name"},
		{`R = EXTRACT FROM "f" USING X;`, "column name"},
		{`OUTPUT TO "f";`, "result name"},
		{`OUTPUT R "f";`, "TO"},
		{`R = SELECT A FROM T`, "; after statement"},
		{`R = FOO A;`, "expected EXTRACT, SELECT, or UNION"},
		{`R = SELECT A B FROM T;`, "expected AS"},
		{`R = SELECT Sum(D FROM T;`, ") to close call"},
		{`R = EXTRACT A FROM "unterminated USING X;`, "unterminated string"},
		{`R = SELECT A FROM T WHERE A ! B;`, "unexpected character"},
		{`R = SELECT A FROM T GROUP A;`, "BY after GROUP"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("R = SELECT A\nFROM;\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "2:5") {
		t.Errorf("error position = %q, want prefix 2:5", err.Error())
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	src := `r = select A, sum(D) as S from T group by A;
output r to "o";`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(s.Stmts))
	}
	if !IsAggCall(s.Stmts[0].(*AssignStmt).Query.(*SelectQuery).Items[1].Expr) {
		t.Error("lower-case sum should be an aggregate")
	}
}

func TestParseNegativeNumbersAndFloats(t *testing.T) {
	src := `R = SELECT A FROM T WHERE A > -1.5;
OUTPUT R TO "o";`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	w := s.Stmts[0].(*AssignStmt).Query.(*SelectQuery).Where.(*BinaryExpr)
	neg := w.R.(*BinaryExpr)
	if neg.Op != "-" {
		t.Fatalf("negation = %+v", neg)
	}
	lit := neg.R.(*NumberLit)
	if lit.Text != "1.5" || lit.IsInt {
		t.Errorf("float literal = %+v", lit)
	}
}

func TestLexEqEq(t *testing.T) {
	toks, err := Lex("a == b <> c")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokEq {
		t.Errorf("== should lex as =, got %v", toks[1].Kind)
	}
	if toks[3].Kind != TokNe {
		t.Errorf("<> should lex as !=, got %v", toks[3].Kind)
	}
}

func TestParseHaving(t *testing.T) {
	src := `R = SELECT A, Sum(D) as S FROM T GROUP BY A HAVING S > 10 AND A < 5;
OUTPUT R TO "o";`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.Stmts[0].(*AssignStmt).Query.(*SelectQuery)
	if sel.Having == nil {
		t.Fatal("HAVING not parsed")
	}
	if got := sel.Having.String(); got != "((S > 10) AND (A < 5))" {
		t.Errorf("having = %s", got)
	}
	if _, err := Parse(`R = SELECT A FROM T HAVING A > 1;`); err == nil {
		t.Error("HAVING without GROUP BY should fail to parse")
	}
}

func TestParseDistinct(t *testing.T) {
	s, err := Parse(`R = SELECT DISTINCT A, B FROM T; OUTPUT R TO "o";`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.Stmts[0].(*AssignStmt).Query.(*SelectQuery)
	if !sel.Distinct || len(sel.Items) != 2 {
		t.Errorf("distinct = %v items = %d", sel.Distinct, len(sel.Items))
	}
	s2, err := Parse(`R = SELECT A FROM T; OUTPUT R TO "o";`)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Stmts[0].(*AssignStmt).Query.(*SelectQuery).Distinct {
		t.Error("plain select must not be distinct")
	}
}

func TestParseOrderedOutput(t *testing.T) {
	s, err := Parse(`OUTPUT R TO "o" ORDER BY B, A;`)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Stmts[0].(*OutputStmt)
	if len(out.OrderBy) != 2 || out.OrderBy[0].Col.Name != "B" || out.OrderBy[1].Col.Name != "A" {
		t.Errorf("order by = %+v", out.OrderBy)
	}
	// Directions.
	s2, err := Parse(`OUTPUT R TO "o" ORDER BY B DESC, A ASC, C;`)
	if err != nil {
		t.Fatal(err)
	}
	o2 := s2.Stmts[0].(*OutputStmt)
	if !o2.OrderBy[0].Desc || o2.OrderBy[1].Desc || o2.OrderBy[2].Desc {
		t.Errorf("directions = %+v", o2.OrderBy)
	}
	if _, err := Parse(`OUTPUT R TO "o" ORDER A;`); err == nil {
		t.Error("ORDER without BY should fail")
	}
}

func TestParseUnionAll(t *testing.T) {
	s, err := Parse(`U = UNION ALL A, B, C; OUTPUT U TO "o";`)
	if err != nil {
		t.Fatal(err)
	}
	u := s.Stmts[0].(*AssignStmt).Query.(*UnionQuery)
	if len(u.Sources) != 3 || u.Sources[2] != "C" {
		t.Errorf("sources = %v", u.Sources)
	}
	if _, err := Parse(`U = UNION A, B;`); err == nil {
		t.Error("bare UNION should require ALL")
	}
	if _, err := Parse(`U = UNION ALL A;`); err == nil {
		t.Error("single-source union should fail")
	}
}
