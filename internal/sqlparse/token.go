// Package sqlparse implements the front end for the SCOPE script
// subset used throughout the paper: EXTRACT ... FROM ... USING,
// SELECT ... FROM ... [WHERE ...] [GROUP BY ...] over named
// intermediates, and OUTPUT ... TO. Scripts are sequences of
// assignments plus outputs, exactly as in Fig. 6 of the paper.
package sqlparse

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokComma
	TokSemi
	TokDot
	TokLParen
	TokRParen
	TokEq // =
	TokNe // != or <>
	TokLt // <
	TokLe // <=
	TokGt // >
	TokGe // >=
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokColon
	// Keywords (case-insensitive in source).
	TokExtract
	TokFrom
	TokUsing
	TokSelect
	TokAs
	TokWhere
	TokGroup
	TokBy
	TokOutput
	TokTo
	TokAnd
	TokOr
	TokHaving
	TokDistinct
	TokOrder
	TokUnion
	TokAll
	TokAsc
	TokDesc
)

var kindNames = map[TokKind]string{
	TokEOF: "end of script", TokIdent: "identifier", TokNumber: "number",
	TokString: "string", TokComma: ",", TokSemi: ";", TokDot: ".",
	TokLParen: "(", TokRParen: ")", TokEq: "=", TokNe: "!=",
	TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokColon: ":",
	TokExtract: "EXTRACT", TokFrom: "FROM", TokUsing: "USING",
	TokSelect: "SELECT", TokAs: "AS", TokWhere: "WHERE",
	TokGroup: "GROUP", TokBy: "BY", TokOutput: "OUTPUT", TokTo: "TO",
	TokAnd: "AND", TokOr: "OR", TokHaving: "HAVING",
	TokDistinct: "DISTINCT", TokOrder: "ORDER",
	TokUnion: "UNION", TokAll: "ALL",
	TokAsc: "ASC", TokDesc: "DESC",
}

// String renders the kind for error messages.
func (k TokKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

// Pos renders the token's position as "line:col".
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }

// keywords maps upper-cased identifier text to keyword kinds.
var keywords = map[string]TokKind{
	"EXTRACT": TokExtract, "FROM": TokFrom, "USING": TokUsing,
	"SELECT": TokSelect, "AS": TokAs, "WHERE": TokWhere,
	"GROUP": TokGroup, "BY": TokBy, "OUTPUT": TokOutput, "TO": TokTo,
	"AND": TokAnd, "OR": TokOr, "HAVING": TokHaving,
	"DISTINCT": TokDistinct, "ORDER": TokOrder,
	"UNION": TokUnion, "ALL": TokAll,
	"ASC": TokAsc, "DESC": TokDesc,
}

// Error is a parse or lex error carrying a source position.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
