package sqlparse

import "strings"

// Script is a parsed SCOPE script: a sequence of assignments and
// OUTPUT statements.
type Script struct {
	Stmts []Stmt
}

// Stmt is a top-level statement.
type Stmt interface{ stmt() }

// AssignStmt binds a query result to a name: "R = SELECT ...;".
type AssignStmt struct {
	Name  string
	Query Query
	Tok   Token
}

func (*AssignStmt) stmt() {}

// OrderItem is one ORDER BY column with its direction.
type OrderItem struct {
	Col  ColRefAST
	Desc bool
}

// String renders "A" or "A DESC".
func (o OrderItem) String() string {
	if o.Desc {
		return o.Col.String() + " DESC"
	}
	return o.Col.String()
}

// OutputStmt writes a named result to a file:
// "OUTPUT R TO \"p\" [ORDER BY col [DESC], ...];". An ORDER BY
// demands a globally sorted output file.
type OutputStmt struct {
	Src     string
	Path    string
	OrderBy []OrderItem
	Tok     Token
}

func (*OutputStmt) stmt() {}

// Query is the right-hand side of an assignment.
type Query interface{ query() }

// ExtractQuery reads columns from a file with a named extractor.
type ExtractQuery struct {
	Cols      []ColDef
	Path      string
	Extractor string
}

func (*ExtractQuery) query() {}

// ColDef is one extracted column with an optional type annotation
// (":int", ":float", ":string"); the default is int, matching the
// numeric log data of the paper's scripts.
type ColDef struct {
	Name string
	Type string
}

// UnionQuery concatenates two or more named intermediates with
// identical schemas: "R = UNION ALL X, Y;".
type UnionQuery struct {
	Sources []string
	Tok     Token
}

func (*UnionQuery) query() {}

// SelectQuery is
// SELECT [DISTINCT] items FROM sources [WHERE pred]
// [GROUP BY cols [HAVING pred]].
type SelectQuery struct {
	Distinct bool
	Items    []SelectItem
	From     []string
	Where    Expr
	GroupBy  []ColRefAST
	Having   Expr
}

func (*SelectQuery) query() {}

// SelectItem is one projection item with an optional alias.
type SelectItem struct {
	Expr Expr
	As   string
	Tok  Token
}

// Expr is a scalar expression AST node.
type Expr interface {
	exprNode()
	// String renders the expression in source-like syntax.
	String() string
}

// ColRefAST is a possibly qualified column reference (B or R1.B).
type ColRefAST struct {
	Qualifier string
	Name      string
	Tok       Token
}

func (*ColRefAST) exprNode() {}

// String implements Expr.
func (c *ColRefAST) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Text  string
	IsInt bool
	Tok   Token
}

func (*NumberLit) exprNode() {}

// String implements Expr.
func (n *NumberLit) String() string { return n.Text }

// StringLit is a string literal.
type StringLit struct {
	Val string
	Tok Token
}

func (*StringLit) exprNode() {}

// String implements Expr.
func (s *StringLit) String() string { return `"` + s.Val + `"` }

// CallExpr is a function call, used for aggregates: Sum(D), Count().
type CallExpr struct {
	Name string
	Args []Expr
	Tok  Token
}

func (*CallExpr) exprNode() {}

// String implements Expr.
func (c *CallExpr) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return c.Name + "(" + strings.Join(args, ", ") + ")"
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   string // "+", "-", "*", "/", "=", "!=", "<", "<=", ">", ">=", "AND", "OR"
	L, R Expr
	Tok  Token
}

func (*BinaryExpr) exprNode() {}

// String implements Expr.
func (b *BinaryExpr) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// AggFuncNames is the set of recognized aggregate function names
// (upper-cased). The binder uses it to split aggregates from plain
// scalar calls.
var AggFuncNames = map[string]bool{
	"SUM": true, "COUNT": true, "MIN": true, "MAX": true, "AVG": true,
}

// IsAggCall reports whether e is a call to an aggregate function.
func IsAggCall(e Expr) bool {
	c, ok := e.(*CallExpr)
	return ok && AggFuncNames[strings.ToUpper(c.Name)]
}
