package sqlparse

import (
	"strings"
	"testing"
)

func TestFormatCanonical(t *testing.T) {
	src := `r0 = extract A , B:int , D FROM "in.log" using LogExtractor;
R = select distinct A,  B from R0 where A>=1 and B!=2;
G = SELECT A, Sum(B) as S FROM R GROUP BY A HAVING S > 0;
U = union all G, G;
OUTPUT U TO "o" order by A;`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got := Format(s)
	want := `r0 = EXTRACT A, B:int, D FROM "in.log" USING LogExtractor;
R = SELECT DISTINCT A, B FROM R0 WHERE ((A >= 1) AND (B != 2));
G = SELECT A, Sum(B) AS S FROM R GROUP BY A HAVING (S > 0);
U = UNION ALL G, G;
OUTPUT U TO "o" ORDER BY A;
`
	if got != want {
		t.Errorf("Format:\n%s\nwant:\n%s", got, want)
	}
}

// TestFormatRoundTrip: parsing formatted output reproduces the same
// formatted text (idempotence), for a corpus of diverse scripts.
func TestFormatRoundTrip(t *testing.T) {
	corpus := []string{
		scriptS1,
		`X = EXTRACT K,V1 FROM "f1" USING E;
Y = EXTRACT K,V2 FROM "f2" USING E;
R = SELECT X.K, V1, V2 FROM X, Y WHERE X.K = Y.K AND V1 > 3;
OUTPUT R TO "o";`,
		`A = EXTRACT P,Q FROM "f" USING E;
B = SELECT P, Q*2+1 as QQ FROM A;
C = SELECT DISTINCT QQ FROM B;
OUTPUT C TO "o" ORDER BY QQ;`,
	}
	for i, src := range corpus {
		s1p, err := Parse(src)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		once := Format(s1p)
		s2p, err := Parse(once)
		if err != nil {
			t.Fatalf("corpus %d: formatted output does not parse: %v\n%s", i, err, once)
		}
		twice := Format(s2p)
		if once != twice {
			t.Errorf("corpus %d: formatting not idempotent:\n%s\nvs\n%s", i, once, twice)
		}
	}
}

func TestFormatPreservesSemantics(t *testing.T) {
	// Operator precedence must survive the round trip: the formatter
	// emits fully parenthesized expressions.
	src := `R = SELECT A + B * C as V FROM T WHERE A > 1 AND B < 2 OR C = 3; OUTPUT R TO "o";`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	formatted := Format(s)
	if !strings.Contains(formatted, "(A + (B * C))") {
		t.Errorf("precedence lost:\n%s", formatted)
	}
	reparsed, err := Parse(formatted)
	if err != nil {
		t.Fatal(err)
	}
	if Format(reparsed) != formatted {
		t.Error("round trip changed the script")
	}
}
