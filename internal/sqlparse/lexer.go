package sqlparse

import (
	"strings"
	"unicode"
)

// Lexer tokenizes SCOPE script text. Use Lex to tokenize a whole
// script at once.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Lex tokenizes the entire script, returning the token stream
// terminated by a TokEOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(startLine, startCol, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	mk := func(k TokKind, text string) Token {
		return Token{Kind: k, Text: text, Line: line, Col: col}
	}
	if l.pos >= len(l.src) {
		return mk(TokEOF, ""), nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
			l.advance()
		}
		text := string(l.src[start:l.pos])
		if k, ok := keywords[strings.ToUpper(text)]; ok {
			return mk(k, text), nil
		}
		return mk(TokIdent, text), nil
	case unicode.IsDigit(r):
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsDigit(l.peek()) || l.peek() == '.') {
			// A dot is part of the number only if followed by a digit
			// (so "R0.A" lexes as ident dot ident, but identifiers
			// can't start with digits anyway; be strict).
			if l.peek() == '.' && !unicode.IsDigit(l.peek2()) {
				break
			}
			l.advance()
		}
		return mk(TokNumber, string(l.src[start:l.pos])), nil
	case r == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, errf(line, col, "unterminated string literal")
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\\' && l.pos < len(l.src) {
				// Keep escapes verbatim except \" — file paths in
				// SCOPE scripts contain backslashes.
				n := l.peek()
				if n == '"' {
					sb.WriteRune(l.advance())
					continue
				}
			}
			sb.WriteRune(c)
		}
		return mk(TokString, sb.String()), nil
	}
	l.advance()
	switch r {
	case ',':
		return mk(TokComma, ","), nil
	case ';':
		return mk(TokSemi, ";"), nil
	case '.':
		return mk(TokDot, "."), nil
	case '(':
		return mk(TokLParen, "("), nil
	case ')':
		return mk(TokRParen, ")"), nil
	case ':':
		return mk(TokColon, ":"), nil
	case '+':
		return mk(TokPlus, "+"), nil
	case '-':
		return mk(TokMinus, "-"), nil
	case '*':
		return mk(TokStar, "*"), nil
	case '/':
		return mk(TokSlash, "/"), nil
	case '=':
		if l.peek() == '=' {
			l.advance()
		}
		return mk(TokEq, "="), nil
	case '!':
		if l.peek() == '=' {
			l.advance()
			return mk(TokNe, "!="), nil
		}
		return Token{}, errf(line, col, "unexpected character %q", "!")
	case '<':
		switch l.peek() {
		case '=':
			l.advance()
			return mk(TokLe, "<="), nil
		case '>':
			l.advance()
			return mk(TokNe, "<>"), nil
		}
		return mk(TokLt, "<"), nil
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(TokGe, ">="), nil
		}
		return mk(TokGt, ">"), nil
	}
	return Token{}, errf(line, col, "unexpected character %q", string(r))
}
