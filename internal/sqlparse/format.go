package sqlparse

import (
	"fmt"
	"strings"
)

// Format renders a parsed script back to canonical SCOPE text: one
// statement per line, canonical keyword casing and spacing. Formatting
// is idempotent and round-trips: parsing the output yields a script
// that formats identically.
func Format(s *Script) string {
	var b strings.Builder
	for _, st := range s.Stmts {
		b.WriteString(formatStmt(st))
		b.WriteString("\n")
	}
	return b.String()
}

// quoteScope quotes a string literal the way the lexer reads it:
// backslashes are verbatim (SCOPE scripts are full of Windows paths);
// only double quotes are escaped.
func quoteScope(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

func formatStmt(st Stmt) string {
	switch s := st.(type) {
	case *AssignStmt:
		return s.Name + " = " + formatQuery(s.Query) + ";"
	case *OutputStmt:
		out := fmt.Sprintf("OUTPUT %s TO %s", s.Src, quoteScope(s.Path))
		if len(s.OrderBy) > 0 {
			refs := make([]string, len(s.OrderBy))
			for i, it := range s.OrderBy {
				refs[i] = it.String()
			}
			out += " ORDER BY " + strings.Join(refs, ", ")
		}
		return out + ";"
	default:
		return fmt.Sprintf("/* unknown statement %T */", st)
	}
}

func formatQuery(q Query) string {
	switch x := q.(type) {
	case *ExtractQuery:
		cols := make([]string, len(x.Cols))
		for i, c := range x.Cols {
			cols[i] = c.Name
			if c.Type != "" {
				cols[i] += ":" + c.Type
			}
		}
		return fmt.Sprintf("EXTRACT %s FROM %s USING %s",
			strings.Join(cols, ", "), quoteScope(x.Path), x.Extractor)
	case *SelectQuery:
		var b strings.Builder
		b.WriteString("SELECT ")
		if x.Distinct {
			b.WriteString("DISTINCT ")
		}
		items := make([]string, len(x.Items))
		for i, it := range x.Items {
			items[i] = it.Expr.String()
			if it.As != "" {
				items[i] += " AS " + it.As
			}
		}
		b.WriteString(strings.Join(items, ", "))
		b.WriteString(" FROM ")
		b.WriteString(strings.Join(x.From, ", "))
		if x.Where != nil {
			b.WriteString(" WHERE ")
			b.WriteString(x.Where.String())
		}
		if len(x.GroupBy) > 0 {
			refs := make([]string, len(x.GroupBy))
			for i := range x.GroupBy {
				refs[i] = x.GroupBy[i].String()
			}
			b.WriteString(" GROUP BY ")
			b.WriteString(strings.Join(refs, ", "))
			if x.Having != nil {
				b.WriteString(" HAVING ")
				b.WriteString(x.Having.String())
			}
		}
		return b.String()
	case *UnionQuery:
		return "UNION ALL " + strings.Join(x.Sources, ", ")
	default:
		return fmt.Sprintf("/* unknown query %T */", q)
	}
}
