package cost

import (
	"testing"

	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/stats"
)

func rel(rows int64, distinct map[string]int64) stats.Relation {
	return stats.Relation{Rows: rows, RowBytes: 32, Distinct: distinct}
}

func TestNewModelDefaults(t *testing.T) {
	m := NewModel(Cluster{})
	d := DefaultCluster()
	if m.C != d {
		t.Errorf("zero cluster should default: %+v", m.C)
	}
	m2 := NewModel(Cluster{Machines: 10})
	if m2.C.Machines != 10 || m2.C.DiskBytesPerSec != d.DiskBytesPerSec {
		t.Errorf("partial defaults wrong: %+v", m2.C)
	}
}

func TestParallelismCaps(t *testing.T) {
	m := NewModel(DefaultCluster())
	r := rel(10_000_000, map[string]int64{"A": 1000, "B": 7, "C": 5000})
	if got := m.Parallelism(props.SerialPartitioning(), r); got != 1 {
		t.Errorf("serial parallelism = %v", got)
	}
	if got := m.Parallelism(props.RandomPartitioning(), r); got != 100 {
		t.Errorf("random parallelism = %v", got)
	}
	// Hash on a low-cardinality column is capped by its distincts:
	// this is what makes partitioning on {B} locally suboptimal.
	if got := m.Parallelism(props.HashPartitioning(props.NewColSet("B")), r); got != 7 {
		t.Errorf("hash{B} parallelism = %v, want 7", got)
	}
	if got := m.Parallelism(props.HashPartitioning(props.NewColSet("A", "B", "C")), r); got != 100 {
		t.Errorf("hash{A,B,C} parallelism = %v, want 100 (cap)", got)
	}
	if got := m.Parallelism(props.BroadcastPartitioning(), r); got != 100 {
		t.Errorf("broadcast parallelism = %v", got)
	}
}

func TestRepartitionDominatesCompute(t *testing.T) {
	// The premise of the paper's plans: exchanges are far more
	// expensive than local aggregation over the same rows.
	m := NewModel(DefaultCluster())
	r := rel(100_000_000, map[string]int64{"A": 1000})
	random := props.RandomPartitioning()
	reCost := m.OpCost(&relop.Repartition{To: props.HashPartitioning(props.NewColSet("A"))}, r, []stats.Relation{r}, []props.Partitioning{random})
	aggCost := m.OpCost(&relop.StreamAgg{Keys: []string{"A"}}, rel(1000, nil), []stats.Relation{r}, []props.Partitioning{random})
	if reCost <= aggCost {
		t.Errorf("repartition (%v) should dominate stream agg (%v)", reCost, aggCost)
	}
}

func TestRepartitionToFewPartitionsCostsMore(t *testing.T) {
	// Receiving on 7 machines bottlenecks on receive bandwidth.
	m := NewModel(DefaultCluster())
	r := rel(100_000_000, map[string]int64{"B": 7, "A": 100_000})
	random := props.RandomPartitioning()
	toB := m.OpCost(&relop.Repartition{To: props.HashPartitioning(props.NewColSet("B"))}, r, []stats.Relation{r}, []props.Partitioning{random})
	toA := m.OpCost(&relop.Repartition{To: props.HashPartitioning(props.NewColSet("A"))}, r, []stats.Relation{r}, []props.Partitioning{random})
	if toB <= toA {
		t.Errorf("repartition to 7 receivers (%v) should cost more than to 100 (%v)", toB, toA)
	}
}

func TestMergeReceiveCostsExtra(t *testing.T) {
	m := NewModel(DefaultCluster())
	r := rel(10_000_000, map[string]int64{"B": 1000})
	random := props.RandomPartitioning()
	to := props.HashPartitioning(props.NewColSet("B"))
	plain := m.OpCost(&relop.Repartition{To: to}, r, []stats.Relation{r}, []props.Partitioning{random})
	merged := m.OpCost(&relop.Repartition{To: to, MergeOrder: props.NewOrdering("B")}, r, []stats.Relation{r}, []props.Partitioning{random})
	if merged <= plain {
		t.Errorf("merge receive (%v) should cost more than plain (%v)", merged, plain)
	}
}

func TestBroadcastScalesWithMachines(t *testing.T) {
	m := NewModel(DefaultCluster())
	r := rel(1_000_000, nil)
	random := props.RandomPartitioning()
	bc := m.OpCost(&relop.Repartition{To: props.BroadcastPartitioning()}, r, []stats.Relation{r}, []props.Partitioning{random})
	hash := m.OpCost(&relop.Repartition{To: props.HashPartitioning(props.NewColSet("A"))}, r, []stats.Relation{r}, []props.Partitioning{random})
	if bc <= hash {
		t.Errorf("broadcast (%v) should cost more than hash exchange (%v)", bc, hash)
	}
}

func TestSerialExecutionSlower(t *testing.T) {
	m := NewModel(DefaultCluster())
	r := rel(50_000_000, nil)
	sortOp := &relop.Sort{Order: props.NewOrdering("A")}
	parCost := m.OpCost(sortOp, r, []stats.Relation{r}, []props.Partitioning{props.RandomPartitioning()})
	serCost := m.OpCost(sortOp, r, []stats.Relation{r}, []props.Partitioning{props.SerialPartitioning()})
	if serCost <= parCost*10 {
		t.Errorf("serial sort (%v) should be much slower than parallel (%v)", serCost, parCost)
	}
}

func TestHashAggCostsMoreThanStreamAgg(t *testing.T) {
	m := NewModel(DefaultCluster())
	in := rel(10_000_000, nil)
	out := rel(1000, nil)
	random := []props.Partitioning{props.RandomPartitioning()}
	ins := []stats.Relation{in}
	stream := m.OpCost(&relop.StreamAgg{Keys: []string{"A"}}, out, ins, random)
	hash := m.OpCost(&relop.HashAgg{Keys: []string{"A"}}, out, ins, random)
	if hash <= stream {
		t.Errorf("hash agg (%v) should cost more per row than stream agg (%v)", hash, stream)
	}
}

func TestSortPlusStreamCanBeatHashAgg(t *testing.T) {
	// With a pre-sorted input, stream agg alone must beat hash agg;
	// the optimizer's choice between Sort+StreamAgg and HashAgg is
	// then a real tradeoff decided by the sort cost.
	m := NewModel(DefaultCluster())
	in := rel(10_000_000, nil)
	out := rel(1000, nil)
	random := []props.Partitioning{props.RandomPartitioning()}
	ins := []stats.Relation{in}
	stream := m.OpCost(&relop.StreamAgg{Keys: []string{"A"}}, out, ins, random)
	sort := m.OpCost(&relop.Sort{Order: props.NewOrdering("A")}, in, ins, random)
	hash := m.OpCost(&relop.HashAgg{Keys: []string{"A"}}, out, ins, random)
	if stream >= hash {
		t.Errorf("bare stream (%v) should beat hash (%v)", stream, hash)
	}
	if sort <= 0 {
		t.Error("sort must have positive cost")
	}
}

func TestStageOverheadAndScale(t *testing.T) {
	c := DefaultCluster()
	c.StageOverhead = 100
	m := NewModel(c)
	tiny := rel(1, nil)
	got := m.OpCost(&relop.PhysSequence{}, tiny, nil, nil)
	if got < 100 {
		t.Errorf("stage overhead not applied: %v", got)
	}
	c.Scale = 10
	m2 := NewModel(c)
	if got2 := m2.OpCost(&relop.PhysSequence{}, tiny, nil, nil); got2 < got*9.99 {
		t.Errorf("scale not applied: %v vs %v", got2, got)
	}
}

func TestSpoolAndReadCosts(t *testing.T) {
	m := NewModel(DefaultCluster())
	r := rel(10_000_000, map[string]int64{"B": 50})
	p := props.HashPartitioning(props.NewColSet("B"))
	spool := m.OpCost(&relop.PhysSpool{}, r, []stats.Relation{r}, []props.Partitioning{p})
	read := m.SpoolReadCost(r, p)
	if spool <= 0 || read <= 0 {
		t.Errorf("spool costs must be positive: write=%v read=%v", spool, read)
	}
	if read >= spool*2 {
		t.Errorf("a spool read (%v) should be comparable to the write (%v)", read, spool)
	}
	if m.RepartitionCost(r) <= 0 {
		t.Error("RepartitionCost must be positive")
	}
}

func TestUnknownOperatorStillPriced(t *testing.T) {
	m := NewModel(DefaultCluster())
	got := m.OpCost(&relop.Extract{}, rel(10, nil), []stats.Relation{rel(10, nil)}, []props.Partitioning{props.RandomPartitioning()})
	if got <= 0 {
		t.Errorf("fallback pricing = %v", got)
	}
}

// TestCostMonotonicity: per-operator costs never decrease when the
// input grows, for every operator the optimizer prices.
func TestCostMonotonicity(t *testing.T) {
	m := NewModel(DefaultCluster())
	random := props.RandomPartitioning()
	ops := []relop.Operator{
		&relop.PhysExtract{Path: "t"},
		&relop.Repartition{To: props.HashPartitioning(props.NewColSet("A"))},
		&relop.Repartition{To: props.RangePartitioning(props.NewOrdering("A"))},
		&relop.Sort{Order: props.NewOrdering("A")},
		&relop.StreamAgg{Keys: []string{"A"}},
		&relop.HashAgg{Keys: []string{"A"}},
		&relop.PhysSpool{},
		&relop.PhysOutput{Path: "o"},
		&relop.PhysFilter{Pred: relop.Lit(relop.IntVal(1))},
		&relop.PhysProject{},
		&relop.PhysUnion{},
	}
	for _, op := range ops {
		prev := 0.0
		for _, rows := range []int64{1_000, 100_000, 10_000_000, 1_000_000_000} {
			r := rel(rows, map[string]int64{"A": rows / 10})
			out := r
			if op.Kind() == relop.KindStreamAgg || op.Kind() == relop.KindHashAgg {
				out = rel(rows/10, nil)
			}
			ins := []stats.Relation{r}
			parts := []props.Partitioning{random}
			if op.Arity() == 0 {
				ins, parts = nil, nil
			}
			c := m.OpCost(op, out, ins, parts)
			if c < prev {
				t.Errorf("%T: cost decreased with input growth: %v -> %v at rows=%d", op, prev, c, rows)
			}
			prev = c
		}
	}
}

// TestJoinCostMonotonicity covers the binary operators.
func TestJoinCostMonotonicity(t *testing.T) {
	m := NewModel(DefaultCluster())
	p := props.HashPartitioning(props.NewColSet("A"))
	for _, op := range []relop.Operator{
		&relop.SortMergeJoin{LeftKeys: []string{"A"}, RightKeys: []string{"A"}},
		&relop.HashJoin{LeftKeys: []string{"A"}, RightKeys: []string{"A"}},
	} {
		prev := 0.0
		for _, rows := range []int64{1_000, 1_000_000, 1_000_000_000} {
			l := rel(rows, map[string]int64{"A": rows / 10})
			r := rel(rows/2, map[string]int64{"A": rows / 20})
			c := m.OpCost(op, rel(rows, nil), []stats.Relation{l, r}, []props.Partitioning{p, p})
			if c < prev {
				t.Errorf("%T: cost decreased: %v -> %v", op, prev, c)
			}
			prev = c
		}
	}
}

// TestSpillCostCharged checks the memory-budget knob: a budget the
// working set exceeds adds exactly one write+read pass of the working
// set at disk bandwidth to sort, hash aggregation, and hash join
// (charged on the build side), and an unbounded or fitting budget
// changes nothing.
func TestSpillCostCharged(t *testing.T) {
	free := NewModel(DefaultCluster())
	tight := DefaultCluster()
	tight.MemBudgetBytes = 1 << 10
	budgeted := NewModel(tight)

	in := rel(1_000_000, map[string]int64{"A": 100_000})
	p := props.HashPartitioning(props.NewColSet("A"))
	par := budgeted.Parallelism(p, in)
	pass := 2 * float64(in.Bytes()) / tight.DiskBytesPerSec / par

	cases := []struct {
		op  relop.Operator
		ins []stats.Relation
		ps  []props.Partitioning
	}{
		{&relop.Sort{Order: props.NewOrdering("A")}, []stats.Relation{in}, []props.Partitioning{p}},
		{&relop.HashAgg{Keys: []string{"A"}}, []stats.Relation{in}, []props.Partitioning{p}},
		{&relop.HashJoin{LeftKeys: []string{"A"}, RightKeys: []string{"A"}},
			[]stats.Relation{in, in}, []props.Partitioning{p, p}},
	}
	for _, c := range cases {
		out := in
		base := free.OpCost(c.op, out, c.ins, c.ps)
		got := budgeted.OpCost(c.op, out, c.ins, c.ps)
		want := base + pass*tight.Scale
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%T: budgeted cost = %v, want base %v + spill pass %v", c.op, got, base, pass)
		}
	}

	// A stream aggregate holds only the open run: never charged.
	sa := &relop.StreamAgg{Keys: []string{"A"}}
	if free.OpCost(sa, in, []stats.Relation{in}, []props.Partitioning{p}) !=
		budgeted.OpCost(sa, in, []stats.Relation{in}, []props.Partitioning{p}) {
		t.Error("stream aggregation should not pay a spill charge")
	}

	// A budget the working set fits under charges nothing.
	roomy := DefaultCluster()
	roomy.MemBudgetBytes = 1 << 40
	fits := NewModel(roomy)
	for _, c := range cases {
		if got, base := fits.OpCost(c.op, in, c.ins, c.ps), free.OpCost(c.op, in, c.ins, c.ps); got != base {
			t.Errorf("%T: fitting budget changed cost: %v != %v", c.op, got, base)
		}
	}
}
