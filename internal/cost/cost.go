// Package cost implements the optimizer's cost model over a simulated
// shared-nothing cluster, standing in for SCOPE's cost model on
// Cosmos. Costs are abstract time units on the stage critical path:
// per-operator work divided by the operator's effective parallelism,
// plus a fixed per-stage scheduling overhead.
//
// Two modeling choices carry the paper's central tension:
//
//  1. The effective parallelism of an operator running on data
//     hash-partitioned on columns P is capped by the number of
//     distinct values of P. Repartitioning S1's shared result on {B}
//     (cheap for the consumers) may leave fewer machines busy than
//     repartitioning on {A,B,C} (locally optimal) — so neither choice
//     dominates, and only cost-based reconciliation at the LCA finds
//     the global optimum.
//
//  2. Exchanges (Repartition) move every byte across the network and
//     are the dominant cost, so a plan that executes a common
//     subexpression once but repartitions its result per consumer can
//     still lose to one that picks a single compromise partitioning.
package cost

import (
	"math"

	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/stats"
)

// Cluster describes the simulated cluster the cost model prices
// against.
type Cluster struct {
	// Machines is the number of worker machines.
	Machines int
	// DiskBytesPerSec is per-machine sequential disk bandwidth.
	DiskBytesPerSec float64
	// NetBytesPerSec is per-machine network bandwidth.
	NetBytesPerSec float64
	// RowCPU is the baseline per-row processing cost in cost units.
	RowCPU float64
	// StageOverhead is the fixed cost of scheduling one operator
	// stage on the cluster.
	StageOverhead float64
	// Scale multiplies all costs, for display calibration only.
	Scale float64
	// MemBudgetBytes is the per-machine working-set budget mirroring
	// exec.Cluster.MemBudget. When positive, memory-hungry operators
	// (sort, hash aggregation, hash join) whose per-machine working
	// set exceeds it are charged a spill pass — every working-set
	// byte written once and read back once at disk bandwidth. Zero
	// means unbounded memory: no operator ever pays a spill charge.
	MemBudgetBytes float64
}

// DefaultCluster returns the cluster configuration used by the
// experiments: 100 machines with commodity disks and a shared network.
func DefaultCluster() Cluster {
	return Cluster{
		Machines:        100,
		DiskBytesPerSec: 100 << 20, // 100 MB/s
		NetBytesPerSec:  40 << 20,  // 40 MB/s
		RowCPU:          50e-9,     // 50ns per row
		StageOverhead:   0.5,
		Scale:           1,
	}
}

// Model prices physical operators on a Cluster.
type Model struct {
	C Cluster
}

// NewModel returns a model over c, defaulting zero fields.
func NewModel(c Cluster) Model {
	d := DefaultCluster()
	if c.Machines <= 0 {
		c.Machines = d.Machines
	}
	if c.DiskBytesPerSec <= 0 {
		c.DiskBytesPerSec = d.DiskBytesPerSec
	}
	if c.NetBytesPerSec <= 0 {
		c.NetBytesPerSec = d.NetBytesPerSec
	}
	if c.RowCPU <= 0 {
		c.RowCPU = d.RowCPU
	}
	if c.StageOverhead <= 0 {
		c.StageOverhead = d.StageOverhead
	}
	if c.Scale <= 0 {
		c.Scale = d.Scale
	}
	return Model{C: c}
}

// Parallelism returns the effective number of machines over which data
// with the given delivered partitioning spreads. Hash partitioning is
// capped by the distinct-value count of the partition columns; serial
// data lives on one machine; random and broadcast data use the whole
// cluster.
func (m Model) Parallelism(p props.Partitioning, rel stats.Relation) float64 {
	n := float64(m.C.Machines)
	switch p.Kind {
	case props.PartSerial:
		return 1
	case props.PartHash, props.PartRange:
		combos := 1.0
		for _, c := range p.Cols.Cols() {
			combos *= float64(rel.DistinctOf(c))
			if combos >= n {
				return n
			}
		}
		if combos < 1 {
			combos = 1
		}
		return math.Min(combos, n)
	default:
		return n
	}
}

// scanCost prices a sequential read or write of the relation spread
// over par machines.
func (m Model) scanCost(rel stats.Relation, par float64) float64 {
	return float64(rel.Bytes()) / m.C.DiskBytesPerSec / par
}

// cpuCost prices per-row CPU work over par machines with a relative
// weight.
func (m Model) cpuCost(rows int64, par, weight float64) float64 {
	return float64(rows) * m.C.RowCPU * weight / par
}

// spillCost prices the grace spill pass of an operator whose
// per-machine working set exceeds the memory budget: the whole
// working set is written to scratch once and read back once at disk
// bandwidth, spread over par machines. Free when the budget is
// unbounded or the working set fits.
func (m Model) spillCost(workBytes int64, par float64) float64 {
	if m.C.MemBudgetBytes <= 0 {
		return 0
	}
	if float64(workBytes)/par <= m.C.MemBudgetBytes {
		return 0
	}
	return 2 * float64(workBytes) / m.C.DiskBytesPerSec / par
}

// OpCost prices one physical operator. out is the operator's output
// relation; in are the children's output relations and inParts their
// delivered partitionings (used for parallelism). The result includes
// the per-stage scheduling overhead and the model scale.
func (m Model) OpCost(op relop.Operator, out stats.Relation, in []stats.Relation, inParts []props.Partitioning) float64 {
	base := m.rawOpCost(op, out, in, inParts)
	return (base + m.C.StageOverhead) * m.C.Scale
}

func (m Model) rawOpCost(op relop.Operator, out stats.Relation, in []stats.Relation, inParts []props.Partitioning) float64 {
	childPar := func(i int) float64 {
		if i < len(in) && i < len(inParts) {
			return m.Parallelism(inParts[i], in[i])
		}
		return float64(m.C.Machines)
	}
	switch o := op.(type) {
	case *relop.PhysExtract:
		// Parallel scan over the whole cluster plus per-row parse.
		par := float64(m.C.Machines)
		return m.scanCost(out, par) + m.cpuCost(out.Rows, par, 2)
	case *relop.PhysCacheScan:
		// Reading a cached artifact prices like one extra spool
		// consumer: a scan of the materialized partitions under their
		// recorded layout. No parse work — rows are already decoded.
		return m.scanCost(out, m.Parallelism(o.Part, out)) + m.cpuCost(out.Rows, m.Parallelism(o.Part, out), 0.2)
	case *relop.Repartition:
		return m.repartitionCost(in[0], inParts[0], o.To, !o.MergeOrder.Empty())
	case *relop.Sort:
		par := childPar(0)
		rowsPer := float64(in[0].Rows) / par
		if rowsPer < 2 {
			rowsPer = 2
		}
		return m.cpuCost(in[0].Rows, par, 1.5*math.Log2(rowsPer)) + m.spillCost(in[0].Bytes(), par)
	case *relop.StreamAgg:
		return m.cpuCost(in[0].Rows, childPar(0), 1)
	case *relop.HashAgg:
		// Hash build + probe is pricier per row than streaming, and
		// the table build adds a per-group charge. A budget-exceeding
		// table grace-partitions its input through scratch.
		par := childPar(0)
		return m.cpuCost(in[0].Rows, par, 2.5) + m.cpuCost(out.Rows, par, 1) + m.spillCost(in[0].Bytes(), par)
	case *relop.SortMergeJoin:
		par := math.Max(childPar(0), childPar(1))
		return m.cpuCost(in[0].Rows+in[1].Rows+out.Rows, par, 1)
	case *relop.HashJoin:
		par := math.Max(childPar(0), childPar(1))
		build, probe := in[0].Rows, in[1].Rows
		if build > probe {
			build, probe = probe, build
		}
		// The executor builds on the right input; a build side over
		// budget grace-partitions both inputs through scratch.
		return m.cpuCost(build, par, 3) + m.cpuCost(probe+out.Rows, par, 1.2) +
			m.spillCost(in[1].Bytes(), par)
	case *relop.PhysSpool:
		// Materialize once to local disk; consumer reads are priced
		// by SpoolReadCost at plan-assembly time.
		par := childPar(0)
		return m.scanCost(in[0], par) + m.cpuCost(in[0].Rows, par, 0.5)
	case *relop.PhysOutput:
		par := childPar(0)
		return m.scanCost(in[0], par) + m.cpuCost(in[0].Rows, par, 0.5)
	case *relop.PhysFilter:
		return m.cpuCost(in[0].Rows, childPar(0), 1)
	case *relop.PhysProject:
		return m.cpuCost(in[0].Rows, childPar(0), 0.5)
	case *relop.PhysUnion:
		// Concatenation is free beyond touching the rows.
		var rows int64
		for _, r := range in {
			rows += r.Rows
		}
		return m.cpuCost(rows, float64(m.C.Machines), 0.1)
	case *relop.PhysSequence:
		return 0
	default:
		// Unknown physical operators price as plain per-row work so
		// the optimizer stays total.
		var rows int64
		for _, r := range in {
			rows += r.Rows
		}
		return m.cpuCost(rows, float64(m.C.Machines), 1)
	}
}

// repartitionCost prices an exchange of rel from partitioning `from`
// to `to`. Every byte crosses the network once, bounded by the slower
// of send and receive aggregate bandwidth; a sort-preserving merge
// receive adds per-row merge work.
func (m Model) repartitionCost(rel stats.Relation, from, to props.Partitioning, merge bool) float64 {
	bytes := float64(rel.Bytes())
	senders := m.Parallelism(from, rel)
	receivers := m.Parallelism(to, rel)
	if to.Kind == props.PartBroadcast {
		bytes *= float64(m.C.Machines)
		receivers = float64(m.C.Machines)
	}
	send := bytes / m.C.NetBytesPerSec / senders
	recv := bytes / m.C.NetBytesPerSec / receivers
	cost := math.Max(send, recv) + m.cpuCost(rel.Rows, senders, 0.5)
	if merge {
		ways := senders
		if ways < 2 {
			ways = 2
		}
		cost += m.cpuCost(rel.Rows, receivers, 0.5*math.Log2(ways))
	}
	return cost
}

// RepartitionCost exposes the bare exchange price for ranking shared
// groups by repartitioning savings (paper Sec. VIII-B): the cost of
// redistributing the group's output across the full cluster.
func (m Model) RepartitionCost(rel stats.Relation) float64 {
	from := props.RandomPartitioning()
	to := props.HashPartitioning(props.NewColSet("_"))
	return (m.repartitionCost(rel, from, to, false) + m.C.StageOverhead) * m.C.Scale
}

// SpoolReadCost prices one extra consumer reading a materialized spool
// of rel delivered with partitioning p.
func (m Model) SpoolReadCost(rel stats.Relation, p props.Partitioning) float64 {
	par := m.Parallelism(p, rel)
	return (m.scanCost(rel, par) + m.C.StageOverhead) * m.C.Scale
}
