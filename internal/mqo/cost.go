package mqo

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"

	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
)

// entryInfo is one hypothetical cached artifact during cost-only
// evaluation: the CacheEntry a consumer's optimizer would see, plus
// the cost-model quantities selection needs — what a consumer pays to
// read it, what the builder pays to compute it, and its estimated
// size.
type entryInfo struct {
	ce    opt.CacheEntry
	sig   string
	build float64
	read  float64
	bytes int64
}

// layout renders the entry for memoization keys: two evaluations of a
// script against virtually identical caches must share one result.
func (e entryInfo) layout() string {
	return fmt.Sprintf("%s|%v|%v", e.ce.Path, e.ce.Part, e.ce.Order)
}

// virtualCache implements opt.ResultCache over a fixed entry set — no
// files exist; the optimizer only needs paths, schemas, and layouts
// to cost CacheScan alternatives.
type virtualCache struct {
	entries map[opt.ForceKey]entryInfo
}

func (v virtualCache) Lookup(fp uint64, sig string, schema relop.Schema) (opt.CacheEntry, bool) {
	e, ok := v.entries[opt.ForceKey{FP: fp, Sig: sig}]
	if !ok || !reflect.DeepEqual(e.ce.Schema, schema) {
		return opt.CacheEntry{}, false
	}
	return e.ce, true
}

func (v virtualCache) Holds(fp uint64) bool {
	for k := range v.entries {
		if k.FP == fp {
			return true
		}
	}
	return false
}

// scriptEval is the memoized outcome of optimizing one script against
// one hypothetical cache state and forced-materialization set.
type scriptEval struct {
	cost float64
	// spooled maps every distinct spooled subexpression of the chosen
	// plan (natural and forced) to its materialization info — the
	// builder-side view selection and the baseline simulation feed on.
	spooled map[opt.ForceKey]entryInfo
	err     error
}

// Evaluator prices hypothetical materialization sets for a DAG. It is
// safe for concurrent use: evaluations of distinct (script, cache
// state, forced set) triples run in parallel and are memoized, so the
// greedy heap seeding, the oracle's subset sweep, and re-costing
// after each commit all share work. Every evaluation builds a fresh
// memo (optimization mutates it), so the DAG itself is never touched.
type Evaluator struct {
	dag   *DAG
	opts  opt.Options
	model cost.Model

	mu    sync.Mutex
	memo  map[string]*scriptEval // guarded by mu
	evals int                    // guarded by mu
}

// NewEvaluator wraps a DAG with a cost evaluator using the given
// optimizer options (cluster, rules, ablation toggles). CSE stays on
// — forced materialization rides on it — and any session cache,
// tracer, or lint setting is stripped: evaluation is hypothetical.
func NewEvaluator(dag *DAG, opts opt.Options) *Evaluator {
	opts.EnableCSE = true
	opts.Cache = nil
	opts.Tracer = nil
	opts.Lint = false
	opts.ForceMaterialize = nil
	opts.WorkloadCovered = nil
	return &Evaluator{
		dag:   dag,
		opts:  opts,
		model: cost.NewModel(opts.Cluster),
		memo:  map[string]*scriptEval{},
	}
}

// Evals returns how many optimizer invocations the evaluator has run
// (memoization cache misses) — the search-effort figure experiments
// report.
func (e *Evaluator) Evals() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evals
}

// SetCost is the workload cost of one materialization set.
type SetCost struct {
	// Total = sum of per-script plan costs + persist charges.
	Total float64
	// PerScript are the individual script plan costs in batch order.
	PerScript []float64
	// Persist is the total artifact-write charge, priced like one
	// consumer read per artifact — mirroring the session's admission
	// formula.
	Persist float64
	// Bytes is the estimated artifact payload of the set.
	Bytes int64
}

// EvalSet prices the workload under a hypothetical materialization
// set: scripts are evaluated in batch order; each selected group is
// force-materialized by its builder (the earliest script containing
// it) and offered as a virtual cache entry to every later script.
// Returns an error when some selected group cannot be materialized by
// its builder's plan (the selector treats that group as infeasible).
func (e *Evaluator) EvalSet(set map[opt.ForceKey]bool) (*SetCost, error) {
	chosen := e.chosenOrder(set)
	entries := map[opt.ForceKey]entryInfo{}
	out := &SetCost{PerScript: make([]float64, len(e.dag.Scripts))}
	for i := range e.dag.Scripts {
		var forced []opt.ForceKey
		for _, g := range chosen {
			if g.Builder() == i {
				forced = append(forced, g.Key)
			}
		}
		se := e.evalScript(i, forced, entries)
		if se.err != nil {
			return nil, se.err
		}
		out.PerScript[i] = se.cost
		out.Total += se.cost
		for _, k := range forced {
			info, ok := se.spooled[k]
			if !ok {
				return nil, fmt.Errorf("mqo: script %d plan did not materialize %016x|%s",
					i, k.FP, k.Sig)
			}
			entries[k] = info
			out.Persist += info.read
			out.Bytes += info.bytes
		}
	}
	out.Total += out.Persist
	return out, nil
}

// chosenOrder resolves a key set to its candidate groups in the DAG's
// deterministic candidate order.
func (e *Evaluator) chosenOrder(set map[opt.ForceKey]bool) []*MergedGroup {
	var out []*MergedGroup
	for _, g := range e.dag.Candidates {
		if set[g.Key] {
			out = append(out, g)
		}
	}
	return out
}

// evalScript optimizes script i against a hypothetical cache state,
// force-materializing the given keys, and returns the memoized
// outcome. forced must be in deterministic order; avail is read, not
// retained.
func (e *Evaluator) evalScript(i int, forced []opt.ForceKey, avail map[opt.ForceKey]entryInfo) *scriptEval {
	key := evalKey(i, forced, avail)
	e.mu.Lock()
	if se, ok := e.memo[key]; ok {
		e.mu.Unlock()
		return se
	}
	e.mu.Unlock()

	se := e.runScript(i, forced, avail)

	e.mu.Lock()
	defer e.mu.Unlock()
	// A concurrent evaluation may have raced us here; both computed
	// the same pure function, so either result is fine.
	if prior, ok := e.memo[key]; ok {
		return prior
	}
	e.memo[key] = se
	e.evals++
	return se
}

func (e *Evaluator) runScript(i int, forced []opt.ForceKey, avail map[opt.ForceKey]entryInfo) *scriptEval {
	m, err := logical.BuildSource(e.dag.Scripts[i].Src, e.dag.Cat)
	if err != nil {
		return &scriptEval{err: err}
	}
	o := e.opts
	if len(forced) > 0 {
		o.ForceMaterialize = map[opt.ForceKey]bool{}
		for _, k := range forced {
			o.ForceMaterialize[k] = true
		}
	}
	if len(avail) > 0 {
		vc := virtualCache{entries: make(map[opt.ForceKey]entryInfo, len(avail))}
		for k, v := range avail {
			vc.entries[k] = v
		}
		o.Cache = vc
	}
	res, err := opt.Optimize(m, o)
	if err != nil {
		return &scriptEval{err: err}
	}
	se := &scriptEval{cost: res.Cost, spooled: map[opt.ForceKey]entryInfo{}}
	for _, sp := range plan.FindAll(res.Plan, relop.KindPhysSpool) {
		child := sp.Children[0]
		if child.Dlvd.Part.Kind == props.PartBroadcast {
			continue
		}
		sig := res.Sigs[child.Group]
		if child.FP == 0 || sig == "" {
			continue
		}
		k := opt.ForceKey{FP: child.FP, Sig: sig}
		if _, dup := se.spooled[k]; dup {
			continue
		}
		se.spooled[k] = entryInfo{
			ce: opt.CacheEntry{
				// Deterministic virtual path: identity + builder.
				Path:   fmt.Sprintf("__mqo/%016x-%d", child.FP, i),
				Schema: child.Schema,
				Part:   child.Dlvd.Part,
				Order:  child.Dlvd.Order,
				FP:     child.FP,
			},
			sig:   sig,
			build: plan.TreeCost(sp),
			read:  e.model.SpoolReadCost(child.Rel, child.Dlvd.Part),
			bytes: child.Rel.Bytes(),
		}
	}
	return se
}

// evalKey canonically renders an evaluation's inputs. Available
// entries are keyed with their layouts: the same identity
// materialized under different physical properties is a different
// cache state.
func evalKey(i int, forced []opt.ForceKey, avail map[opt.ForceKey]entryInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "s%d", i)
	b.WriteString("|F")
	for _, k := range forced {
		fmt.Fprintf(&b, ";%016x|%s", k.FP, k.Sig)
	}
	keys := make([]opt.ForceKey, 0, len(avail))
	for k := range avail {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, c int) bool {
		if keys[a].FP != keys[c].FP {
			return keys[a].FP < keys[c].FP
		}
		return keys[a].Sig < keys[c].Sig
	})
	b.WriteString("|A")
	for _, k := range keys {
		fmt.Fprintf(&b, ";%016x|%s|%s", k.FP, k.Sig, avail[k].layout())
	}
	return b.String()
}
