package mqo

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/opt"
)

// Config parameterizes materialization selection.
type Config struct {
	// Budget bounds the total estimated artifact bytes of the chosen
	// set (0 = unlimited).
	Budget int64
	// Workers bounds the concurrent cost evaluations while seeding
	// the greedy heap (0 = GOMAXPROCS, 1 = serial). Every width
	// produces an identical selection: benefits are pure functions of
	// (script, cache state, forced set) and are gathered by candidate
	// index.
	Workers int
	// ExpectedReuse is the per-script baseline's static admission
	// scalar, mirroring share.Config.ExpectedReuse (0 = 1).
	ExpectedReuse float64
}

// Selection is a chosen materialization set with its workload cost.
type Selection struct {
	// Method names the selection algorithm ("greedy", "exhaustive",
	// "per-script", or "greedy+guard" when the per-script baseline's
	// set was adopted because it priced below the greedy one).
	Method string
	// Chosen are the selected groups in deterministic candidate
	// order; Keys are their identities (what Session.Preadmit takes).
	Chosen []*MergedGroup
	Keys   []opt.ForceKey
	// Base is the workload cost with nothing materialized across
	// scripts (within-script CSE still applies); Total is the cost
	// under the chosen set, persist charges included.
	Base  float64
	Total float64
	// PerScript are the per-script plan costs under the chosen set.
	PerScript []float64
	// Bytes is the estimated artifact payload, bounded by Budget.
	Bytes  int64
	Budget int64
	// Evals is the evaluator's optimizer-invocation count after this
	// selection (cumulative per evaluator).
	Evals int
}

// benefitItem is one heap entry of the lazy greedy selector.
type benefitItem struct {
	idx     int     // candidate index in dag.Candidates
	benefit float64 // cost reduction vs. the chosen set at stamp
	stamp   int     // commit round the benefit was computed against
}

// benefitHeap orders by benefit descending, candidate index ascending
// on ties — deterministic at any worker width.
type benefitHeap []benefitItem

func (h benefitHeap) Len() int { return len(h) }
func (h benefitHeap) Less(i, j int) bool {
	if h[i].benefit != h[j].benefit {
		return h[i].benefit > h[j].benefit
	}
	return h[i].idx < h[j].idx
}
func (h benefitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *benefitHeap) Push(x any)   { *h = append(*h, x.(benefitItem)) }
func (h *benefitHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Select picks the workload's materialization set: the lazy greedy
// heuristic, guarded by the per-script baseline — if simulating the
// session's local admission policy prices below the greedy set under
// the same cost model, its set is adopted instead. The guard makes
// "global never loses to per-script greedy" structural rather than
// empirical.
func Select(ev *Evaluator, cfg Config) (*Selection, error) {
	g, err := SelectGreedy(ev, cfg)
	if err != nil {
		return nil, err
	}
	p, err := SelectPerScript(ev, cfg)
	if err != nil {
		return nil, err
	}
	if p.Total < g.Total {
		guarded := *p
		guarded.Method = "greedy+guard"
		guarded.Evals = ev.Evals()
		return &guarded, nil
	}
	g.Evals = ev.Evals()
	return g, nil
}

// SelectGreedy runs the lazy greedy selector (Kathuria & Sudarshan's
// monotone-benefit variant of Roy et al.): seed a priority queue with
// every candidate's benefit against the empty set, then repeatedly
// re-cost only the queue's top against the currently chosen set —
// committing it when its re-costed benefit is still the maximum and
// positive, stopping when the freshest top benefit is non-positive.
// Candidates that no longer fit the budget, or whose forced
// materialization the builder plan cannot realize (their fingerprint
// drifts when a nested selected spool is inserted below them), are
// dropped permanently.
func SelectGreedy(ev *Evaluator, cfg Config) (*Selection, error) {
	base, err := ev.EvalSet(nil)
	if err != nil {
		return nil, err
	}
	cands := ev.dag.Candidates
	sel := &Selection{
		Method: "greedy",
		Base:   base.Total,
		Total:  base.Total,
		Budget: cfg.Budget,
	}
	chosen := map[opt.ForceKey]bool{}

	// Seed: every candidate's standalone benefit, evaluated
	// concurrently, gathered by index.
	type seed struct {
		cost *SetCost
		err  error
	}
	seeds := make([]seed, len(cands))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	done := make(chan int)
	for i := range cands {
		go func(i int) {
			sem <- struct{}{}
			c, err := ev.EvalSet(map[opt.ForceKey]bool{cands[i].Key: true})
			seeds[i] = seed{cost: c, err: err}
			<-sem
			done <- i
		}(i)
	}
	for range cands {
		<-done
	}

	h := &benefitHeap{}
	for i := range cands {
		if seeds[i].err != nil {
			continue // infeasible alone; cannot become feasible later
		}
		if cfg.Budget > 0 && cands[i].Bytes() > cfg.Budget {
			continue
		}
		heap.Push(h, benefitItem{idx: i, benefit: base.Total - seeds[i].cost.Total, stamp: 0})
	}

	stamp := 0
	for h.Len() > 0 {
		top := heap.Pop(h).(benefitItem)
		g := cands[top.idx]
		if cfg.Budget > 0 && sel.Bytes+g.Bytes() > cfg.Budget {
			continue // dropped: the remaining budget can never refit it
		}
		if top.stamp != stamp {
			// Stale: re-cost against the current chosen set and requeue.
			trial := cloneSet(chosen)
			trial[g.Key] = true
			c, err := ev.EvalSet(trial)
			if err != nil {
				continue // infeasible against the chosen set; drop
			}
			heap.Push(h, benefitItem{idx: top.idx, benefit: sel.Total - c.Total, stamp: stamp})
			continue
		}
		if top.benefit <= 0 {
			break
		}
		chosen[g.Key] = true
		sel.Total -= top.benefit
		sel.Bytes += g.Bytes()
		stamp++
	}

	finalizeSelection(ev, sel, chosen)
	return sel, nil
}

// MaxExhaustive bounds the oracle's candidate count (2^n subsets).
const MaxExhaustive = 12

// SelectExhaustive enumerates every subset of the candidates and
// returns the cheapest feasible one within budget — the test oracle
// for small DAGs. Ties prefer fewer materializations, then the
// lexicographically smallest index set.
func SelectExhaustive(ev *Evaluator, cfg Config) (*Selection, error) {
	cands := ev.dag.Candidates
	if len(cands) > MaxExhaustive {
		return nil, fmt.Errorf("mqo: %d candidates exceed the exhaustive bound of %d",
			len(cands), MaxExhaustive)
	}
	var best *SetCost
	bestMask := -1
	for mask := 0; mask < 1<<len(cands); mask++ {
		set := map[opt.ForceKey]bool{}
		for i := range cands {
			if mask&(1<<i) != 0 {
				set[cands[i].Key] = true
			}
		}
		c, err := ev.EvalSet(set)
		if err != nil {
			continue // infeasible subset
		}
		if cfg.Budget > 0 && c.Bytes > cfg.Budget {
			continue
		}
		if best == nil || c.Total < best.Total ||
			(c.Total == best.Total && popcount(mask) < popcount(bestMask)) {
			best, bestMask = c, mask
		}
	}
	if best == nil {
		return nil, fmt.Errorf("mqo: no feasible subset")
	}
	chosen := map[opt.ForceKey]bool{}
	for i := range cands {
		if bestMask&(1<<i) != 0 {
			chosen[cands[i].Key] = true
		}
	}
	base, err := ev.EvalSet(nil)
	if err != nil {
		return nil, err
	}
	sel := &Selection{
		Method: "exhaustive",
		Base:   base.Total,
		Total:  best.Total,
		Bytes:  best.Bytes,
		Budget: cfg.Budget,
	}
	finalizeSelection(ev, sel, chosen)
	return sel, nil
}

func popcount(mask int) int {
	n := 0
	for mask > 0 {
		n += mask & 1
		mask >>= 1
	}
	return n
}

// SelectPerScript simulates the session's local admission policy over
// the batch — the ablation baseline the global selection must beat.
// Scripts run in order against a growing virtual cache; every spool
// of each natural plan faces the admission formula with the observed
// demand history (falling back to the static scalar, exactly like
// share.Session.admit) and a budget check. No cross-script
// single-consumer subexpression can ever materialize here: a local
// plan has no spool for it.
func SelectPerScript(ev *Evaluator, cfg Config) (*Selection, error) {
	reuse0 := cfg.ExpectedReuse
	if reuse0 <= 0 {
		reuse0 = 1
	}
	entries := map[opt.ForceKey]entryInfo{}
	demand := map[opt.ForceKey]int64{}
	chosen := map[opt.ForceKey]bool{}
	sel := &Selection{
		Method:    "per-script",
		Budget:    cfg.Budget,
		PerScript: make([]float64, len(ev.dag.Scripts)),
	}
	var persist float64
	for i := range ev.dag.Scripts {
		se := ev.evalScript(i, nil, entries)
		if se.err != nil {
			return nil, se.err
		}
		sel.PerScript[i] = se.cost
		sel.Total += se.cost
		for _, k := range sortedSpoolKeys(se.spooled) {
			if _, cached := entries[k]; cached {
				continue
			}
			info := se.spooled[k]
			hist := demand[k]
			demand[k]++
			reuse := float64(hist)
			if reuse <= 0 {
				reuse = reuse0
			}
			if (info.build-info.read)*reuse <= info.read {
				continue
			}
			if cfg.Budget > 0 && sel.Bytes+info.bytes > cfg.Budget {
				continue
			}
			entries[k] = info
			chosen[k] = true
			sel.Bytes += info.bytes
			persist += info.read
		}
	}
	sel.Total += persist
	sel.Base = sel.Total // the baseline is its own reference point
	sel.Evals = ev.Evals()
	for _, k := range sortedKeySlice(chosen) {
		sel.Keys = append(sel.Keys, k)
		if g, ok := ev.dag.Groups[k]; ok {
			sel.Chosen = append(sel.Chosen, g)
		}
	}
	return sel, nil
}

// finalizeSelection fills Keys/Chosen/PerScript from the chosen set.
func finalizeSelection(ev *Evaluator, sel *Selection, chosen map[opt.ForceKey]bool) {
	for _, g := range ev.dag.Candidates {
		if chosen[g.Key] {
			sel.Chosen = append(sel.Chosen, g)
			sel.Keys = append(sel.Keys, g.Key)
		}
	}
	if c, err := ev.EvalSet(chosen); err == nil {
		sel.PerScript = c.PerScript
		sel.Total = c.Total
		sel.Bytes = c.Bytes
	}
	sel.Evals = ev.Evals()
}

func cloneSet(set map[opt.ForceKey]bool) map[opt.ForceKey]bool {
	out := make(map[opt.ForceKey]bool, len(set)+1)
	for k, v := range set {
		out[k] = v
	}
	return out
}

func sortedSpoolKeys(m map[opt.ForceKey]entryInfo) []opt.ForceKey {
	keys := make([]opt.ForceKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].FP != keys[j].FP {
			return keys[i].FP < keys[j].FP
		}
		return keys[i].Sig < keys[j].Sig
	})
	return keys
}

func sortedKeySlice(m map[opt.ForceKey]bool) []opt.ForceKey {
	keys := make([]opt.ForceKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].FP != keys[j].FP {
			return keys[i].FP < keys[j].FP
		}
		return keys[i].Sig < keys[j].Sig
	})
	return keys
}
