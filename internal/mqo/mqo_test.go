package mqo

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/relop"
	"repro/internal/share"
	"repro/internal/stats"
)

func mqoCatalog() *stats.Catalog {
	cat := stats.NewCatalog()
	cat.Put("test.log", &stats.TableStats{Rows: 2_000_000_000, Columns: map[string]stats.ColumnStats{
		"A": {Distinct: 100, AvgBytes: 8},
		"B": {Distinct: 50, AvgBytes: 8},
		"C": {Distinct: 200, AvgBytes: 8},
		"D": {Distinct: 1 << 40, AvgBytes: 8},
	}})
	return cat
}

func mqoTable() *exec.Table {
	schema := relop.Schema{
		{Name: "A", Type: relop.TInt}, {Name: "B", Type: relop.TInt},
		{Name: "C", Type: relop.TInt}, {Name: "D", Type: relop.TInt},
	}
	t := &exec.Table{Schema: schema}
	for i := int64(0); i < 400; i++ {
		t.Rows = append(t.Rows, relop.Row{
			relop.IntVal(i % 7), relop.IntVal(i % 5),
			relop.IntVal(i % 11), relop.IntVal(i * 13),
		})
	}
	return t
}

// wlBuilder shares R within itself, so a local session would admit it
// naturally; wlOnceA/wlOnceB each consume the same R exactly once —
// invisible to per-script admission, gold for global selection.
const wlBuilder = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "a1.out" ORDER BY A, B;
OUTPUT R2 TO "a2.out" ORDER BY B, C;
`

const wlOnceA = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R3 = SELECT A,C,Sum(S) as S3 FROM R GROUP BY A,C;
OUTPUT R3 TO "b3.out" ORDER BY A, C;
`

const wlOnceB = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R4 = SELECT B,Sum(S) as S4 FROM R GROUP BY B;
OUTPUT R4 TO "c4.out" ORDER BY B;
`

// wlFiltA/wlFiltB share a second, independent subexpression (a
// different grouping over a filtered scan), giving selection a
// two-candidate DAG.
const wlFiltA = `
F0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
F = SELECT A,B,Sum(D) as FS FROM F0 WHERE A > 1 GROUP BY A,B;
FA = SELECT A,Sum(FS) as T FROM F GROUP BY A;
OUTPUT FA TO "fa.out" ORDER BY A;
`

const wlFiltB = `
F0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
F = SELECT A,B,Sum(D) as FS FROM F0 WHERE A > 1 GROUP BY A,B;
FB = SELECT B,Sum(FS) as T FROM F GROUP BY B;
OUTPUT FB TO "fb.out" ORDER BY B;
`

func buildTestDAG(t *testing.T, srcs ...string) *DAG {
	t.Helper()
	scripts := make([]Script, len(srcs))
	for i, s := range srcs {
		scripts[i] = Script{Name: string(rune('a' + i)), Src: s}
	}
	d, err := BuildDAG(scripts, mqoCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func groupByCandidates(d *DAG) []*MergedGroup {
	var out []*MergedGroup
	for _, c := range d.Candidates {
		if c.Kind == "GroupBy" {
			out = append(out, c)
		}
	}
	return out
}

// TestMergedDAGIdentityVariants: the Definition-1 identity merges
// semantically equivalent subexpressions across scripts — reordered
// projection lists, commuted conjuncts, renamed aliases and rowsets
// all land in ONE merged group (the PR 3 stability corpus, now at the
// workload level) — while near-miss variants stay separate.
func TestMergedDAGIdentityVariants(t *testing.T) {
	base := `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S FROM R0 WHERE A > 1 AND B < 5 GROUP BY A,B;
OUTPUT R TO "o";
`
	equivalents := []string{
		base,
		`
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT B,A,Sum(D) as S FROM R0 WHERE A > 1 AND B < 5 GROUP BY A,B;
OUTPUT R TO "o";
`, // reordered projection
		`
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S FROM R0 WHERE B < 5 AND A > 1 GROUP BY A,B;
OUTPUT R TO "o";
`, // commuted conjuncts
		`
Q0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
Q = SELECT A,B,Sum(D) as S FROM Q0 WHERE A > 1 AND B < 5 GROUP BY A,B;
OUTPUT Q TO "o";
`, // renamed rowset aliases (binder-internal names never leak)
	}
	nearMisses := []string{
		`
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as T FROM R0 WHERE A > 1 AND B < 5 GROUP BY A,B;
OUTPUT R TO "o";
`, // renamed aggregate output column: the artifact schema differs,
		// so sharing it would mislabel a column — must NOT merge
		`
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(D) as S FROM R0 WHERE A > 2 AND B < 5 GROUP BY A,B;
OUTPUT R TO "o";
`, // different constant
		`
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,C,Sum(D) as S FROM R0 WHERE A > 1 AND B < 5 GROUP BY A,C;
OUTPUT R TO "o";
`, // different grouping keys
		`
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,Sum(C) as S FROM R0 WHERE A > 1 AND B < 5 GROUP BY A,B;
OUTPUT R TO "o";
`, // different aggregate input
	}

	d := buildTestDAG(t, append(equivalents, nearMisses...)...)

	// One GroupBy candidate must span exactly the five equivalent
	// scripts; no GroupBy group may mix an equivalent with a near-miss.
	nEquiv := len(equivalents)
	var span *MergedGroup
	for _, c := range groupByCandidates(d) {
		hasBase, hasMiss := false, false
		for _, s := range c.Scripts {
			if s < nEquiv {
				hasBase = true
			} else {
				hasMiss = true
			}
		}
		if hasBase && hasMiss {
			t.Errorf("merged group %016x|%s mixes equivalent and near-miss scripts: %v",
				c.Key.FP, c.Key.Sig, c.Scripts)
		}
		if hasBase && len(c.Scripts) == nEquiv {
			span = c
		}
	}
	if span == nil {
		t.Fatalf("no GroupBy candidate spans the %d equivalent scripts; candidates: %d",
			nEquiv, len(d.Candidates))
	}
	if !reflect.DeepEqual(span.Scripts, []int{0, 1, 2, 3}) {
		t.Errorf("equivalent scripts merged as %v, want [0 1 2 3]", span.Scripts)
	}

	// Near-miss GroupBys are their own (single-script) groups — they
	// never reach the candidate list.
	for _, c := range groupByCandidates(d) {
		for _, s := range c.Scripts {
			if s >= nEquiv && c == span {
				t.Errorf("near-miss script %d merged into the base group", s)
			}
		}
	}
}

// TestSelectGlobalBeatsPerScript: the workload where every script
// consumes the shared aggregation exactly once. The per-script
// baseline admits nothing (no local plan ever spools it), the global
// selection materializes it once for all consumers — strictly
// cheaper, which is exactly the ablation's headline case.
func TestSelectGlobalBeatsPerScript(t *testing.T) {
	d := buildTestDAG(t, wlOnceA, wlOnceB, wlBuilder)
	ev := NewEvaluator(d, opt.DefaultOptions())

	baseline, err := SelectPerScript(ev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	global, err := Select(ev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(global.Keys) == 0 {
		t.Fatal("global selection chose nothing")
	}
	if global.Total >= baseline.Total {
		t.Errorf("global %.2f not strictly below per-script %.2f", global.Total, baseline.Total)
	}
	if global.Total >= global.Base {
		t.Errorf("global %.2f not below its own base %.2f", global.Total, global.Base)
	}

	// On a workload of only single-consumer scripts, the baseline
	// must truly choose nothing.
	d2 := buildTestDAG(t, wlOnceA, wlOnceB)
	ev2 := NewEvaluator(d2, opt.DefaultOptions())
	b2, err := SelectPerScript(ev2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Keys) != 0 {
		t.Errorf("per-script baseline admitted %d keys without any local spool", len(b2.Keys))
	}
	g2, err := Select(ev2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Total >= b2.Total {
		t.Errorf("two single-consumer scripts: global %.2f not below baseline %.2f", g2.Total, b2.Total)
	}
}

// TestSelectGreedyMatchesOracle: on a small two-candidate DAG the
// lazy greedy selection must agree with the exhaustive oracle — same
// chosen set, same total — at several budget levels.
func TestSelectGreedyMatchesOracle(t *testing.T) {
	d := buildTestDAG(t, wlBuilder, wlOnceA, wlFiltA, wlFiltB)
	if len(d.Candidates) < 2 {
		t.Fatalf("workload produced %d candidates, want >= 2", len(d.Candidates))
	}
	ev := NewEvaluator(d, opt.DefaultOptions())

	var allBytes int64
	for _, c := range d.Candidates {
		allBytes += c.Bytes()
	}
	budgets := []int64{0, allBytes, allBytes / 2, 1}
	for _, budget := range budgets {
		cfg := Config{Budget: budget}
		g, err := SelectGreedy(ev, cfg)
		if err != nil {
			t.Fatalf("budget %d: greedy: %v", budget, err)
		}
		o, err := SelectExhaustive(ev, cfg)
		if err != nil {
			t.Fatalf("budget %d: oracle: %v", budget, err)
		}
		if o.Total > g.Total {
			t.Errorf("budget %d: oracle %.2f above greedy %.2f (oracle must be optimal)",
				budget, o.Total, g.Total)
		}
		if !reflect.DeepEqual(g.Keys, o.Keys) {
			t.Errorf("budget %d: greedy chose %v, oracle %v", budget, g.Keys, o.Keys)
		}
		if g.Total != o.Total {
			t.Errorf("budget %d: greedy total %.4f, oracle %.4f", budget, g.Total, o.Total)
		}
	}
}

// TestSelectionRespectsBudget: chosen bytes never exceed the budget,
// and a budget below every candidate forces the empty selection.
func TestSelectionRespectsBudget(t *testing.T) {
	d := buildTestDAG(t, wlBuilder, wlOnceA, wlFiltA, wlFiltB)
	ev := NewEvaluator(d, opt.DefaultOptions())

	unlimited, err := Select(ev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.Bytes == 0 || len(unlimited.Keys) == 0 {
		t.Fatalf("unlimited selection empty: %+v", unlimited)
	}

	for _, budget := range []int64{1, unlimited.Bytes - 1, unlimited.Bytes} {
		sel, err := Select(ev, Config{Budget: budget})
		if err != nil {
			t.Fatal(err)
		}
		if sel.Bytes > budget {
			t.Errorf("budget %d: selection uses %d bytes", budget, sel.Bytes)
		}
	}
	empty, err := Select(ev, Config{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Keys) != 0 {
		t.Errorf("1-byte budget still chose %d keys", len(empty.Keys))
	}
	if empty.Total != empty.Base {
		t.Errorf("empty selection total %.2f differs from base %.2f", empty.Total, empty.Base)
	}
}

// TestSelectionDeterministicAcrossWorkers: the selection is
// bit-identical at every seeding width — benefits are pure functions
// gathered by candidate index, and the evaluator's memo is just a
// cache. The check.sh mqo race leg runs this under -race.
func TestSelectionDeterministicAcrossWorkers(t *testing.T) {
	var ref *Selection
	for _, workers := range []int{1, 2, 4} {
		d := buildTestDAG(t, wlBuilder, wlOnceA, wlOnceB, wlFiltA, wlFiltB)
		ev := NewEvaluator(d, opt.DefaultOptions())
		sel, err := Select(ev, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = sel
			continue
		}
		if !reflect.DeepEqual(sel.Keys, ref.Keys) {
			t.Errorf("workers=%d chose %v, workers=1 chose %v", workers, sel.Keys, ref.Keys)
		}
		if sel.Total != ref.Total || sel.Bytes != ref.Bytes {
			t.Errorf("workers=%d total/bytes %.4f/%d, workers=1 %.4f/%d",
				workers, sel.Total, sel.Bytes, ref.Total, ref.Bytes)
		}
	}
}

// TestEnactBitIdentical: enacting a selection through a live session
// produces, for every script, outputs bit-identical to a cold
// independent run of the same script — sharing changes cost, never
// results — while the cache serves consumers and charges the MQO
// owner, not the submitting tenant.
func TestEnactBitIdentical(t *testing.T) {
	srcs := []string{wlBuilder, wlOnceA, wlOnceB}
	outs := [][]string{{"a1.out", "a2.out"}, {"b3.out"}, {"c4.out"}}

	// Independent references: each script cold in its own session.
	refs := make([]map[string]*exec.Table, len(srcs))
	for i, src := range srcs {
		fs := exec.NewFileStore()
		fs.Put("test.log", mqoTable())
		s, err := share.NewSession(share.Config{Catalog: mqoCatalog(), FS: fs, Machines: 8})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = rep.Outputs
	}

	d := buildTestDAG(t, srcs...)
	ev := NewEvaluator(d, opt.DefaultOptions())
	sel, err := Select(ev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Keys) == 0 {
		t.Fatal("selection chose nothing to enact")
	}

	fs := exec.NewFileStore()
	fs.Put("test.log", mqoTable())
	s, err := share.NewSession(share.Config{Catalog: d.Cat, FS: fs, Machines: 8})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := Enact(context.Background(), s, d, sel, share.RunOpts{Tenant: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(srcs) {
		t.Fatalf("enacted %d reports for %d scripts", len(reps), len(srcs))
	}

	hits := 0
	for i, rep := range reps {
		hits += rep.CacheHits
		for _, out := range outs[i] {
			got, want := rep.Outputs[out], refs[i][out]
			if got == nil || want == nil {
				t.Fatalf("script %d: missing output %s", i, out)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("%s: %d rows, want %d", out, len(got.Rows), len(want.Rows))
			}
			for r := range got.Rows {
				if !reflect.DeepEqual(got.Rows[r], want.Rows[r]) {
					t.Fatalf("%s row %d: %v, want %v", out, r, got.Rows[r], want.Rows[r])
				}
			}
		}
	}
	if hits == 0 {
		t.Error("no enacted run hit the shared cache")
	}
	if got := s.Cache().OwnerBytes(share.MQOOwner); got == 0 {
		t.Error("no artifact charged to the MQO owner")
	}
}
