package mqo

import (
	"context"

	"repro/internal/opt"
	"repro/internal/share"
)

// Enact runs the workload batch through a live session with the
// chosen materialization set preadmitted: builder scripts
// force-materialize the selected subexpressions (bypassing the
// admission formula; artifacts are owned by share.MQOOwner, outside
// tenant quotas), and later scripts pick them up as CacheScans.
// Scripts run sequentially in batch order — every builder precedes
// all its consumers by construction, since the builder is the
// earliest script containing the subexpression.
//
// Each consumer run is linted with a WorkloadCovered probe over the
// fingerprints already built for it, so a plan that rebuilds a
// covered subexpression surfaces as a P7 finding in its RunReport
// (when the session options enable linting).
func Enact(ctx context.Context, s *share.Session, dag *DAG, sel *Selection, opts share.RunOpts) ([]*share.RunReport, error) {
	s.Preadmit(sel.Keys)
	builder := map[uint64]int{}
	for _, g := range sel.Chosen {
		if b, ok := builder[g.Key.FP]; !ok || g.Builder() < b {
			builder[g.Key.FP] = g.Builder()
		}
	}
	reps := make([]*share.RunReport, 0, len(dag.Scripts))
	for i, sc := range dag.Scripts {
		ro := opts
		idx := i
		ro.WorkloadCovered = func(fp uint64) bool {
			b, ok := builder[fp]
			return ok && b < idx
		}
		rep, err := s.RunContext(ctx, sc.Src, ro)
		if err != nil {
			return reps, err
		}
		reps = append(reps, rep)
	}
	return reps, nil
}

// KeySet returns the selection's identities as a set — the form the
// evaluator's EvalSet takes when re-pricing an enacted selection.
func (s *Selection) KeySet() map[opt.ForceKey]bool {
	out := make(map[opt.ForceKey]bool, len(s.Keys))
	for _, k := range s.Keys {
		out[k] = true
	}
	return out
}
