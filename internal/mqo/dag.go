// Package mqo implements workload-level multi-query optimization on
// top of the paper's per-script CSE framework: a batch of scripts is
// compiled into one merged AND-OR DAG by unioning the per-script
// memos on subexpression identity (Definition-1 fingerprint plus
// canonical signature), and a global materialization set is chosen
// under a storage budget — each selected subexpression is built once
// by its earliest script and read by every other consumer script,
// even ones that use it only a single time and would never
// materialize it under the session's local admission policy.
//
// Selection follows the greedy benefit/cost heuristic of Roy et al.
// in its lazy "monotone sharing benefit" variant (Kathuria &
// Sudarshan): candidate benefits are kept in a priority queue and
// only the top is re-costed against the currently chosen set, which
// is exact under the monotonicity assumption and a close
// approximation otherwise. An exhaustive enumerator over all subsets
// serves as the test oracle for small DAGs, and the session's own
// per-script admission policy is simulated as the ablation baseline;
// Select returns whichever of greedy and baseline is cheaper, so the
// global choice never loses to local greedy under the same costing.
//
// Enactment reuses the existing sharing machinery end to end: chosen
// keys are preadmitted into the session cache (owner "mqo"), builder
// scripts force-materialize them through ordinary spools, and
// consumer scripts pick the artifacts up as CacheScan offers — so an
// enacted batch produces bit-identical results to independent runs.
package mqo

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/opt"
	"repro/internal/relop"
	"repro/internal/stats"
)

// Script is one named scope script of the workload batch.
type Script struct {
	Name string
	Src  string
}

// MergedGroup is one node of the merged AND-OR DAG: a subexpression
// identity together with the set of scripts that compute it. Scripts
// is sorted; the first is the designated builder when the group is
// selected for materialization.
type MergedGroup struct {
	Key opt.ForceKey
	// Kind names the subexpression's root operator (diagnostics).
	Kind string
	// Scripts are the indices (into DAG.Scripts) of the scripts whose
	// memos contain the subexpression, sorted ascending.
	Scripts []int
	// Schema and Rel are the subexpression's output schema and
	// estimated statistics, taken from its first occurrence (identical
	// across occurrences by construction — the identity hashes the
	// whole logical subtree).
	Schema relop.Schema
	Rel    stats.Relation
}

// Builder is the script designated to materialize the group: its
// earliest consumer, which runs first in batch order.
func (g *MergedGroup) Builder() int { return g.Scripts[0] }

// Bytes estimates the materialized artifact's size from the
// subexpression's statistics — the quantity the storage budget bounds.
func (g *MergedGroup) Bytes() int64 { return g.Rel.Bytes() }

// DAG is the merged AND-OR DAG of a workload batch.
type DAG struct {
	Scripts []Script
	Cat     *stats.Catalog
	// Groups is the full union, keyed by subexpression identity.
	Groups map[opt.ForceKey]*MergedGroup
	// Candidates are the groups appearing in at least two scripts —
	// the only ones whose materialization can beat per-script CSE,
	// which already handles sharing within one script. Sorted by
	// (fingerprint, signature) for deterministic selection.
	Candidates []*MergedGroup
}

// BuildDAG compiles every script against cat and unions the resulting
// memos on fingerprint + canonical signature. Extract leaves are
// excluded (caching a raw scan shares no computation), as are
// side-effecting and plumbing operators (Output, Sequence, Spool).
//
// Identity is computed after within-script CSE identification, not on
// the raw memo: Algorithm 1's spool insertion changes the
// fingerprints of every ancestor of a shared subexpression, and the
// session cache keys artifacts by those post-identification values —
// a DAG keyed on raw fingerprints would select groups whose artifacts
// no consumer lookup can ever match.
func BuildDAG(scripts []Script, cat *stats.Catalog) (*DAG, error) {
	if len(scripts) == 0 {
		return nil, fmt.Errorf("mqo: empty workload")
	}
	d := &DAG{Scripts: scripts, Cat: cat, Groups: map[opt.ForceKey]*MergedGroup{}}
	for i, sc := range scripts {
		m, err := logical.BuildSource(sc.Src, cat)
		if err != nil {
			return nil, fmt.Errorf("mqo: script %q: %w", sc.Name, err)
		}
		core.IdentifyCommonSubexpressions(m)
		fps := core.Fingerprints(m)
		sigs := core.CanonicalSignatures(m)
		seen := map[opt.ForceKey]bool{}
		for _, g := range m.Groups() {
			if !mergeable(g) {
				continue
			}
			key := opt.ForceKey{FP: fps[g.ID], Sig: sigs[g.ID]}
			if key.FP == 0 || key.Sig == "" || seen[key] {
				continue
			}
			seen[key] = true
			mg, ok := d.Groups[key]
			if !ok {
				mg = &MergedGroup{
					Key:    key,
					Kind:   g.Exprs[0].Op.Kind().String(),
					Schema: g.Props.Schema,
					Rel:    g.Props.Rel,
				}
				d.Groups[key] = mg
			}
			mg.Scripts = append(mg.Scripts, i)
		}
	}
	for _, mg := range d.Groups {
		if len(mg.Scripts) >= 2 {
			d.Candidates = append(d.Candidates, mg)
		}
	}
	sort.Slice(d.Candidates, func(i, j int) bool {
		a, b := d.Candidates[i].Key, d.Candidates[j].Key
		if a.FP != b.FP {
			return a.FP < b.FP
		}
		return a.Sig < b.Sig
	})
	return d, nil
}

// mergeable reports whether a memo group is a sharing candidate:
// a real computation, not a leaf scan or plumbing.
func mergeable(g *memo.Group) bool {
	if g.Dead || len(g.Exprs) == 0 {
		return false
	}
	switch g.Exprs[0].Op.Kind() {
	case relop.KindExtract, relop.KindSpool, relop.KindOutput, relop.KindSequence:
		return false
	}
	return true
}
