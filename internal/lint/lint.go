// Package lint is the static-analysis framework of the repository:
// named analyzers produce Diagnostics with stable codes, severities,
// and locations, collected into a Report with human and JSON
// renderers.
//
// Two analyzer families exist:
//
//   - Plan analyzers (codes P1–P5) run over an optimized plan.Node
//     DAG and check the paper's *global* common-subexpression
//     invariants — single-Spool sharing, pin consistency across
//     consumer paths, DAG/tree cost coherence, missed CSEs, and
//     redundant enforcers. They complement opt.ValidatePlan, which
//     checks only local per-node physical soundness (codes V1–V8).
//
//   - Script analyzers (codes S1–S3) run over the sqlparse AST and
//     catch script-level mistakes before optimization: unused or
//     shadowed assignments, references to columns absent from the
//     derived schema, and statements whose result never reaches an
//     OUTPUT.
//
// Sharing bugs manifest as silent cost regressions rather than wrong
// answers, so execution tests cannot catch them; these analyzers are
// wired as oracles into the fuzz and bench harnesses and surfaced
// through the scopelint CLI.
package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a diagnostic.
type Severity int

const (
	// Info diagnostics are observations, not defects.
	Info Severity = iota
	// Warning diagnostics are likely defects that do not invalidate
	// the plan or script.
	Warning
	// Error diagnostics are invariant violations.
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// MarshalJSON encodes the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// Diagnostic is one finding: a stable code, the analyzer that produced
// it, a severity, a location, and a message. Locations are either
// script positions ("file:line:col") or operator paths into the plan
// DAG ("Sequence/Output/HashAgg(G14)").
type Diagnostic struct {
	Code     string   `json:"code"`
	Analyzer string   `json:"analyzer"`
	Severity Severity `json:"severity"`
	Pos      string   `json:"pos"`
	Message  string   `json:"message"`
}

// String renders the diagnostic in the conventional
// "pos: severity: message [code]" compiler format.
func (d Diagnostic) String() string {
	pos := d.Pos
	if pos == "" {
		pos = "<plan>"
	}
	return fmt.Sprintf("%s: %s: %s [%s]", pos, d.Severity, d.Message, d.Code)
}

// Report is an ordered collection of diagnostics.
type Report struct {
	Diags []Diagnostic
}

// Add appends a diagnostic.
func (r *Report) Add(d Diagnostic) { r.Diags = append(r.Diags, d) }

// Addf appends a diagnostic built from a format string.
func (r *Report) Addf(code, analyzer string, sev Severity, pos, format string, args ...any) {
	r.Add(Diagnostic{Code: code, Analyzer: analyzer, Severity: sev, Pos: pos,
		Message: fmt.Sprintf(format, args...)})
}

// Merge appends every diagnostic of other.
func (r *Report) Merge(other *Report) {
	if other != nil {
		r.Diags = append(r.Diags, other.Diags...)
	}
}

// Empty reports whether the report holds no diagnostics.
func (r *Report) Empty() bool { return len(r.Diags) == 0 }

// Errors counts the Error-severity diagnostics.
func (r *Report) Errors() int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// Sort orders diagnostics by severity (errors first), then code, then
// position, for deterministic output.
func (r *Report) Sort() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Pos < b.Pos
	})
}

// SortByFile orders diagnostics by file (the position's component
// before the first ':'), then code, then full position, then message.
// This is the order of machine-readable output: consumers diff -json
// findings across runs, so ties must never depend on the order
// analyzers happened to execute in.
func (r *Report) SortByFile() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if af, bf := posFile(a.Pos), posFile(b.Pos); af != bf {
			return af < bf
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.Message < b.Message
	})
}

// posFile is the file component of a position ("file:line:col" or
// "file: Sequence/Output"); a position with no ':' is its own file.
func posFile(pos string) string {
	if i := strings.IndexByte(pos, ':'); i >= 0 {
		return pos[:i]
	}
	return pos
}

// String renders the report one diagnostic per line.
func (r *Report) String() string {
	var b strings.Builder
	for _, d := range r.Diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

// JSON encodes the diagnostics as a JSON array (an empty report
// encodes as "[]", not "null").
func (r *Report) JSON() ([]byte, error) {
	ds := r.Diags
	if ds == nil {
		ds = []Diagnostic{}
	}
	return json.MarshalIndent(ds, "", "  ")
}

// Err converts the report into a single error summarizing the first
// diagnostic, or nil when the report is empty. It lets error-based
// callers consume analyzer output without caring about the framework.
func (r *Report) Err() error {
	if r.Empty() {
		return nil
	}
	if len(r.Diags) == 1 {
		return fmt.Errorf("%s", r.Diags[0])
	}
	return fmt.Errorf("%s (and %d more findings)", r.Diags[0], len(r.Diags)-1)
}
