package lint

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/cost"
	"repro/internal/memo"
	"repro/internal/plan"
	"repro/internal/relop"
)

// PlanConfig parameterizes one plan-analysis run.
type PlanConfig struct {
	// CSE records that the plan was optimized with the
	// common-subexpression framework enabled; the missed-CSE analyzer
	// (P4) only applies then.
	CSE bool
	// Consolidated records that the plan is a phase-2 winner with the
	// full optimization budget: every shared group was pinned to a
	// single property set, so the strict sharing invariants (P1, P2,
	// and the cost-dominance half of P3) apply. A phase-1 winner may
	// legitimately materialize one shared group under several
	// optimization contexts — that is exactly the inefficiency the
	// paper's phase 2 exists to remove — so those checks are skipped
	// for it.
	Consolidated bool
	// Model prices spool reads for the cost-coherence analyzer; the
	// default cluster model is used when nil.
	Model *cost.Model
	// Memo, when available, lets analyzers name shared groups
	// precisely; all checks degrade gracefully without it.
	Memo *memo.Memo
	// CacheHolds, when non-nil, reports whether an active session
	// cache holds a valid materialized result for a fingerprint. The
	// rebuilt-cached-subexpression analyzer (P6) only applies then.
	CacheHolds func(fp uint64) bool
	// WorkloadCovered, when non-nil, reports whether a workload-level
	// materialization set (the chosen set of an MQO selection) covers a
	// fingerprint this plan was expected to consume via CacheScan. The
	// rebuilt-workload-subexpression analyzer (P7) only applies then.
	// Callers must exclude fingerprints the plan itself is designated
	// to build — the builder legitimately computes its own artifact.
	WorkloadCovered func(fp uint64) bool
	// ForcedFPs marks subexpressions whose materialization was forced
	// by a workload-level pin (opt.Options.ForceMaterialize): their
	// spools may legitimately have a single in-plan consumer — the
	// other consumers live in different scripts of the batch — so the
	// P3 read-multiplicity check skips them.
	ForcedFPs map[uint64]bool
	// Rounds, when available, carries the phase-2 round traces that
	// produced the plan so the cost-coherence analyzer (P3) can check
	// the branch-and-bound bookkeeping: a pruned round's recorded cost
	// must be +Inf (its exact cost was never computed), and the round
	// selected as Best must be a completed one.
	Rounds []RoundCost
}

// RoundCost is the lint-facing view of one phase-2 round trace.
type RoundCost struct {
	// Cost is the round's recorded DAG-aware cost (+Inf when the round
	// was pruned or infeasible).
	Cost float64
	// Pruned marks a round aborted by the branch-and-bound cost bound.
	Pruned bool
	// Fallback marks the synthetic trace emitted when no evaluated
	// round produced a plan.
	Fallback bool
	// Best marks the round whose plan was kept.
	Best bool
}

// PlanAnalyzer is one named global-invariant check over an optimized
// plan DAG.
type PlanAnalyzer struct {
	// Name is the analyzer's short kebab-case name.
	Name string
	// Code is the stable diagnostic code every finding carries.
	Code string
	// Doc is a one-line description for catalogs and CLI help.
	Doc string
	run func(c *planCtx)
}

// planCtx is the shared traversal state handed to each analyzer.
type planCtx struct {
	cfg    PlanConfig
	root   *plan.Node
	nodes  []*plan.Node // distinct nodes, parents before children
	paths  map[*plan.Node]string
	parent map[*plan.Node][]*plan.Node // one entry per incoming edge
	report *Report
}

func (c *planCtx) addf(a *PlanAnalyzer, sev Severity, n *plan.Node, format string, args ...any) {
	pos := ""
	if n != nil {
		pos = c.paths[n]
	}
	c.report.Addf(a.Code, a.Name, sev, pos, format, args...)
}

// PlanAnalyzers returns the plan-analyzer catalog in code order.
func PlanAnalyzers() []*PlanAnalyzer {
	return []*PlanAnalyzer{
		{Name: "single-spool", Code: "P1",
			Doc: "every shared group is consumed through exactly one Spool materialization",
			run: runSingleSpool},
		{Name: "pin-consistency", Code: "P2",
			Doc: "the same pinned physical property set reaches a shared group on every consumer path",
			run: runPinConsistency},
		{Name: "cost-coherence", Code: "P3",
			Doc: "DAG cost charges each spool once plus one read per consumer and never exceeds tree cost",
			run: runCostCoherence},
		{Name: "missed-cse", Code: "P4",
			Doc: "no two distinct subplans compute the same expression when CSE is enabled",
			run: runMissedCSE},
		{Name: "redundant-enforcer", Code: "P5",
			Doc: "no exchange over an already-satisfying partitioning and no sort over already-sorted input",
			run: runRedundantEnforcer},
		{Name: "rebuilt-cached-subexpression", Code: "P6",
			Doc: "no subplan recomputes a subexpression whose materialized result the active session cache holds",
			run: runRebuiltCached},
		{Name: "rebuilt-workload-subexpression", Code: "P7",
			Doc: "no subplan recomputes a subexpression the workload's chosen materialization set covers",
			run: runRebuiltWorkload},
	}
}

// AnalyzePlan runs every plan analyzer over root and returns the
// sorted report.
func AnalyzePlan(root *plan.Node, cfg PlanConfig) *Report {
	r := &Report{}
	if root == nil {
		return r
	}
	c := &planCtx{
		cfg:    cfg,
		root:   root,
		nodes:  plan.Operators(root),
		paths:  PlanPaths(root),
		parent: map[*plan.Node][]*plan.Node{},
		report: r,
	}
	for _, n := range c.nodes {
		for _, ch := range n.Children {
			c.parent[ch] = append(c.parent[ch], n)
		}
	}
	for _, a := range PlanAnalyzers() {
		a.run(c)
	}
	r.Sort()
	return r
}

// PlanPaths computes a human-readable operator path for every distinct
// node of the DAG: the chain of operator kinds from the root on the
// node's first-discovered path, suffixed with the node's memo group —
// e.g. "Sequence/Output/HashAgg(G14)". Validation and the plan
// analyzers share it as their location scheme.
func PlanPaths(root *plan.Node) map[*plan.Node]string {
	paths := map[*plan.Node]string{}
	var walk func(n *plan.Node, prefix string)
	walk = func(n *plan.Node, prefix string) {
		if _, seen := paths[n]; seen {
			return
		}
		name := n.Op.Kind().String()
		if prefix != "" {
			name = prefix + "/" + name
		}
		paths[n] = fmt.Sprintf("%s(G%d)", name, n.Group)
		for _, c := range n.Children {
			walk(c, name)
		}
	}
	walk(root, "")
	return paths
}

// spoolKey mirrors the materialization identity the DAG cost model
// uses: memo group plus optimization context.
func spoolKey(n *plan.Node) string { return fmt.Sprintf("%d|%s", n.Group, n.CtxKey) }

// spoolsByGroup buckets the distinct Spool nodes by memo group.
func (c *planCtx) spoolsByGroup() (groups []int64, byGroup map[int64][]*plan.Node) {
	byGroup = map[int64][]*plan.Node{}
	for _, n := range c.nodes {
		if n.IsSpool() {
			g := int64(n.Group)
			if len(byGroup[g]) == 0 {
				groups = append(groups, g)
			}
			byGroup[g] = append(byGroup[g], n)
		}
	}
	return groups, byGroup
}

// runSingleSpool is P1: a shared group must be materialized by exactly
// one Spool node per optimization context. Two distinct nodes under
// the *same* context mean the winner cache handed out duplicate
// materializations (the DAG cost model would silently charge them as
// one). Consumer counting is P3's job: a spool's effective read count
// is its DAG path multiplicity, not its parent-edge count — a single
// pointer-shared consumer (e.g. one UNION input used twice) reads the
// spool twice.
func runSingleSpool(c *planCtx) {
	a := PlanAnalyzers()[0]
	groups, byGroup := c.spoolsByGroup()
	for _, g := range groups {
		byKey := map[string][]*plan.Node{}
		for _, n := range byGroup[g] {
			byKey[spoolKey(n)] = append(byKey[spoolKey(n)], n)
		}
		for _, same := range byKey {
			if len(same) > 1 {
				c.addf(a, Error, same[0],
					"shared group G%d is materialized by %d distinct Spool nodes under one context %q; the DAG cost model charges them as one",
					g, len(same), same[0].CtxKey)
			}
		}
	}
}

// runPinConsistency is P2: in a consolidated plan every path from the
// LCA down to a shared group enforces the same pinned property set, so
// all Spool materializations of one group must agree on optimization
// context and delivered physical properties.
func runPinConsistency(c *planCtx) {
	a := PlanAnalyzers()[1]
	if !c.cfg.Consolidated {
		return
	}
	groups, byGroup := c.spoolsByGroup()
	for _, g := range groups {
		nodes := byGroup[g]
		first := nodes[0]
		for _, n := range nodes[1:] {
			if n.CtxKey != first.CtxKey {
				c.addf(a, Error, n,
					"shared group G%d is consumed under conflicting pinned contexts %q and %q; phase 2 must enforce one property set on every LCA→shared-group path",
					g, first.CtxKey, n.CtxKey)
				continue
			}
			if !n.Dlvd.Part.Equal(first.Dlvd.Part) || !n.Dlvd.Order.Equal(first.Dlvd.Order) {
				c.addf(a, Error, n,
					"shared group G%d delivers %v on one consumer path but %v on another under the same context %q",
					g, first.Dlvd, n.Dlvd, n.CtxKey)
			}
		}
	}
}

// runCostCoherence is P3: the DAG cost must charge each distinct spool
// materialization once plus one read per consumer. Concretely: a plan
// without spools has equal tree and DAG costs; a consolidated plan's
// DAG cost never exceeds its tree cost (sharing can only help once
// every spool has at least two consumers); and every materialization
// is read at least twice under DAG execution semantics.
func runCostCoherence(c *planCtx) {
	a := PlanAnalyzers()[2]
	for i, r := range c.cfg.Rounds {
		if r.Pruned && !math.IsInf(r.Cost, 1) {
			c.addf(a, Error, nil,
				"round %d is marked pruned but records finite cost %.1f; a pruned round's exact cost is unknown and must be recorded as +Inf",
				i, r.Cost)
		}
		if r.Best && r.Pruned && !r.Fallback {
			c.addf(a, Error, nil,
				"round %d is marked best but was pruned; the kept plan must come from a completed round",
				i)
		}
	}
	model := cost.NewModel(cost.DefaultCluster())
	if c.cfg.Model != nil {
		model = *c.cfg.Model
	}
	dag := plan.DAGCost(c.root, model)
	tree := plan.TreeCost(c.root)
	groups, _ := c.spoolsByGroup()
	const eps = 1e-9
	if len(groups) == 0 {
		if diff := math.Abs(dag - tree); diff > eps*math.Max(1, tree) {
			c.addf(a, Error, c.root,
				"plan has no spools but DAG cost %.1f differs from tree cost %.1f; costs must coincide without sharing",
				dag, tree)
		}
		return
	}
	// A workload-forced materialization deliberately costs this plan
	// more than recomputing (build + spool read for one consumer); the
	// payoff lives in other scripts, so dominance only holds unforced.
	if c.cfg.Consolidated && len(c.cfg.ForcedFPs) == 0 && dag > tree*(1+eps) {
		c.addf(a, Error, c.root,
			"DAG cost %.1f exceeds tree cost %.1f; a consolidated shared plan must never cost more than recomputing every consumer",
			dag, tree)
	}
	if !c.cfg.Consolidated {
		return
	}
	// Reads per materialization, mirroring plan.DAGCost's reference
	// multiplicities: each distinct spool subtree is entered once, all
	// other operators propagate their parents' multiplicity.
	reads := map[string]float64{}
	repr := map[string]*plan.Node{}
	em := map[*plan.Node]float64{c.root: 1}
	seen := map[string]bool{}
	for _, n := range c.nodes {
		e := em[n]
		if e == 0 {
			continue
		}
		if n.IsSpool() {
			k := spoolKey(n)
			reads[k] += e
			if repr[k] == nil {
				repr[k] = n
			}
			if !seen[k] {
				seen[k] = true
				for _, ch := range n.Children {
					em[ch]++
				}
			}
			continue
		}
		for _, ch := range n.Children {
			em[ch] += e
		}
	}
	for k, r := range reads {
		if r < 2 {
			// A workload-forced spool is built for consumers in *other*
			// scripts of the batch; one in-plan read is legitimate.
			if n := repr[k]; len(n.Children) == 1 && c.cfg.ForcedFPs[n.Children[0].FP] {
				continue
			}
			c.addf(a, Error, repr[k],
				"spool materialization of shared group G%d is read %g time(s) under DAG semantics; sharing requires at least two consumers",
				repr[k].Group, r)
		}
	}
}

// computationRoot reports whether a node's operator performs relational
// computation that Algorithm 1 would have deduplicated. Enforcers
// (Sort, Repartition), Spools, and terminal side-effecting operators
// are excluded from missed-CSE comparison: consumer-side compensation
// legitimately repeats an enforcer above a shared spool on every path
// (the Fig. 8(b) local re-sorts). Local-phase aggregates are excluded
// for the same reason — phase splitting is a physical implementation
// choice, so two differently-keyed global aggregates may lower to
// identical local pre-aggregation stages without any logical common
// subexpression existing for Algorithm 1 to merge.
func computationRoot(n *plan.Node) bool {
	switch op := n.Op.(type) {
	case *relop.Sort, *relop.Repartition, *relop.PhysSpool,
		*relop.PhysOutput, *relop.PhysSequence, *relop.PhysCacheScan:
		return false
	case *relop.StreamAgg:
		return op.Phase != relop.AggLocal
	case *relop.HashAgg:
		return op.Phase != relop.AggLocal
	}
	return true
}

// runMissedCSE is P4: with CSE enabled, no two distinct subplans may
// compute the same expression — Algorithm 1 should have merged them
// into one shared group. Subtrees are fingerprinted structurally
// (operator signature over child fingerprints, order-sensitive) and
// colliding fingerprints are deep-compared before reporting, mirroring
// core.Fingerprints over the memo.
func runMissedCSE(c *planCtx) {
	a := PlanAnalyzers()[3]
	if !c.cfg.CSE {
		return
	}
	fp := map[*plan.Node]uint64{}
	var fingerprint func(n *plan.Node) uint64
	fingerprint = func(n *plan.Node) uint64 {
		if v, ok := fp[n]; ok {
			return v
		}
		h := fnv.New64a()
		h.Write([]byte(n.Op.Sig()))
		for _, ch := range n.Children {
			var buf [8]byte
			v := fingerprint(ch)
			for i := 0; i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
		v := h.Sum64()
		fp[n] = v
		return v
	}
	// Only spool-free subtrees participate: a subplan that reads a
	// spool sits above the sharing frontier, where each consumer
	// independently compensates toward its own requirements —
	// coinciding pipelines there are not missed sharing opportunities.
	// CacheScans count as a sharing frontier too: the subexpression
	// was shared across queries rather than within this one.
	hasSpool := map[*plan.Node]bool{}
	for i := len(c.nodes) - 1; i >= 0; i-- { // children before parents
		n := c.nodes[i]
		s := n.IsSpool() || n.Op.Kind() == relop.KindCacheScan
		for _, ch := range n.Children {
			s = s || hasSpool[ch]
		}
		hasSpool[n] = s
	}
	buckets := map[uint64][]*plan.Node{}
	for _, n := range c.nodes {
		fingerprint(n)
		if computationRoot(n) && !hasSpool[n] {
			buckets[fp[n]] = append(buckets[fp[n]], n)
		}
	}
	var structEq func(x, y *plan.Node) bool
	structEq = func(x, y *plan.Node) bool {
		if x == y {
			return true
		}
		if x.Op.Sig() != y.Op.Sig() || len(x.Children) != len(y.Children) {
			return false
		}
		for i := range x.Children {
			if !structEq(x.Children[i], y.Children[i]) {
				return false
			}
		}
		return true
	}
	// Report only maximal duplicated subtrees: members of an already
	// reported class shadow their descendants (which are necessarily
	// duplicated too).
	shadowed := map[*plan.Node]bool{}
	var shadow func(n *plan.Node)
	shadow = func(n *plan.Node) {
		for _, ch := range n.Children {
			if !shadowed[ch] {
				shadowed[ch] = true
				shadow(ch)
			}
		}
	}
	for _, n := range c.nodes { // topo order: parents first
		bucket := buckets[fp[n]]
		if len(bucket) < 2 || shadowed[n] {
			continue
		}
		var class []*plan.Node
		for _, m := range bucket {
			if m != n && structEq(n, m) && !shadowed[m] {
				class = append(class, m)
			}
		}
		if len(class) == 0 {
			continue
		}
		c.addf(a, Error, n,
			"subplan %q is computed independently by %d other plan node(s) (e.g. at %s); identical expressions must share one spool when CSE is on",
			n.Op.Sig(), len(class), c.paths[class[0]])
		shadow(n)
		for _, m := range class {
			shadowed[m] = true
			shadow(m)
		}
	}
}

// runRebuiltCached is P6: when an active session cache holds a valid
// materialized result for a subexpression, a plan that recomputes that
// subexpression from scratch left cross-query sharing on the table.
// The optimizer's CacheScan candidate loses legitimately when the
// cached layout needs expensive compensation, so this is a warning,
// not an error. Enforcers, spools, terminal operators, and CacheScans
// themselves are skipped; each fingerprint is reported once at its
// topmost occurrence.
func runRebuiltCached(c *planCtx) {
	a := PlanAnalyzers()[5]
	if c.cfg.CacheHolds == nil {
		return
	}
	seen := map[uint64]bool{}
	for _, n := range c.nodes { // topo order: parents first
		if !computationRoot(n) || n.FP == 0 || seen[n.FP] {
			continue
		}
		seen[n.FP] = true
		if c.cfg.CacheHolds(n.FP) {
			c.addf(a, Warning, n,
				"subplan %q (fp=%x) is recomputed although the session cache holds its materialized result",
				n.Op.Sig(), n.FP)
		}
	}
}

// runRebuiltWorkload is P7: when a workload-level MQO selection chose
// a subexpression for materialization, an enacted per-script plan that
// recomputes it from scratch defeats the global decision — the builder
// paid the persist cost and this consumer ignores the artifact. It
// generalizes P6 from "the session cache happens to hold it" to "the
// workload's chosen set is supposed to cover it". Like P6 this is a
// warning: the CacheScan candidate can lose legitimately when the
// recorded layout needs expensive compensation. The spool funneling a
// forced build of the subexpression itself is exempt via ForcedFPs
// semantics at the caller (WorkloadCovered excludes the plan's own
// build targets).
func runRebuiltWorkload(c *planCtx) {
	a := PlanAnalyzers()[6]
	if c.cfg.WorkloadCovered == nil {
		return
	}
	seen := map[uint64]bool{}
	for _, n := range c.nodes { // topo order: parents first
		if !computationRoot(n) || n.FP == 0 || seen[n.FP] {
			continue
		}
		seen[n.FP] = true
		if c.cfg.WorkloadCovered(n.FP) {
			c.addf(a, Warning, n,
				"subplan %q (fp=%x) is recomputed although the workload's chosen materialization set covers it",
				n.Op.Sig(), n.FP)
		}
	}
}

// runRedundantEnforcer is P5: an exchange whose input already
// satisfies the target partitioning, or a sort whose input is already
// sorted, does nothing but burn cluster time — the classic silent cost
// regression of a sharing bug.
func runRedundantEnforcer(c *planCtx) {
	a := PlanAnalyzers()[4]
	for _, n := range c.nodes {
		switch op := n.Op.(type) {
		case *relop.Sort:
			if len(n.Children) == 1 && n.Children[0].Dlvd.Order.Satisfies(op.Order) {
				c.addf(a, Warning, n,
					"redundant sort: input already delivers order %v satisfying %v",
					n.Children[0].Dlvd.Order, op.Order)
			}
		case *relop.Repartition:
			if len(n.Children) == 1 && n.Children[0].Dlvd.Part.Satisfies(op.To) {
				c.addf(a, Warning, n,
					"redundant exchange: input partitioning %v already satisfies %v",
					n.Children[0].Dlvd.Part, op.To)
			}
		}
	}
}
