package lint

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/sqlparse"
)

// Codes lists every diagnostic code the lint catalogs register —
// script analyzers, plan analyzers, and the reserved codes — in
// sorted order. Validation codes (V1–V7) are registered by
// internal/opt and are not included here; callers that accept both
// (scopelint's -disable, scope.Plan.Lint) union the two sets.
func Codes() []string {
	var out []string
	for _, a := range ScriptAnalyzers() {
		out = append(out, a.Code)
	}
	for _, a := range PlanAnalyzers() {
		out = append(out, a.Code)
	}
	out = append(out, ReservedCodes()...)
	sort.Strings(out)
	return out
}

// Filter returns a copy of the report without the diagnostics whose
// code is listed in disable. Disabling is a reporting decision, not an
// analysis one: every analyzer still runs, so -disable can never mask
// an analyzer crash.
func (r *Report) Filter(disable ...string) *Report {
	if len(disable) == 0 {
		return r
	}
	off := map[string]bool{}
	for _, c := range disable {
		off[c] = true
	}
	out := &Report{}
	for _, d := range r.Diags {
		if !off[d.Code] {
			out.Diags = append(out.Diags, d)
		}
	}
	return out
}

// scriptIgnore is one //lint:ignore CODE reason directive found in a
// script's raw source. The lexer skips comments, so directives are
// extracted from the source text by line.
type scriptIgnore struct {
	line   int
	code   string
	reason string
	// malformed is a non-empty description when the directive does not
	// parse (missing code or reason).
	malformed string
	used      bool
}

const ignoreMarker = "//lint:ignore"

// parseScriptIgnores scans src line by line for ignore directives.
// The directive suppresses matching findings on its own line or the
// line immediately below it, so both trailing-comment and
// line-above placement work:
//
//	TMP = SELECT ...;   //lint:ignore S1 kept for the next revision
//
//	//lint:ignore S3 consumed by a commented-out OUTPUT
//	AGG = SELECT ...;
func parseScriptIgnores(src string) []*scriptIgnore {
	var out []*scriptIgnore
	for i, line := range strings.Split(src, "\n") {
		at := strings.Index(line, ignoreMarker)
		if at < 0 {
			continue
		}
		ig := &scriptIgnore{line: i + 1}
		rest := strings.TrimSpace(line[at+len(ignoreMarker):])
		code, reason, _ := strings.Cut(rest, " ")
		switch {
		case code == "":
			ig.malformed = "missing diagnostic code"
		case strings.TrimSpace(reason) == "":
			ig.malformed = "missing reason; suppressions must document why"
		default:
			ig.code = code
			ig.reason = strings.TrimSpace(reason)
		}
		out = append(out, ig)
	}
	return out
}

// posLine extracts the line number from a "file:line:col" diagnostic
// position, 0 when the position has no line.
func posLine(pos string) int {
	parts := strings.Split(pos, ":")
	if len(parts) < 3 {
		return 0
	}
	n, err := strconv.Atoi(parts[len(parts)-2])
	if err != nil {
		return 0
	}
	return n
}

// runIgnoreDirective is S4: every //lint:ignore directive must name a
// suppressible script code, carry a reason, and actually suppress a
// finding. It runs after the other script analyzers, so their
// findings are present in the report: matching ones are removed here
// (that is the suppression), and a directive that removes nothing is
// itself flagged — stale ignores must not outlive the code they
// excused.
func runIgnoreDirective(c *scriptCtx) {
	if len(c.ignores) == 0 {
		return
	}
	a := ScriptAnalyzers()[3]
	suppressible := map[string]bool{}
	for _, sa := range ScriptAnalyzers() {
		if sa.Code != a.Code {
			suppressible[sa.Code] = true
		}
	}
	tok := func(ig *scriptIgnore) sqlparse.Token {
		return sqlparse.Token{Line: ig.line, Col: 1}
	}
	var active []*scriptIgnore
	for _, ig := range c.ignores {
		switch {
		case ig.malformed != "":
			c.addf(a, Error, tok(ig), "malformed lint:ignore directive: %s (want //lint:ignore CODE reason)", ig.malformed)
		case !suppressible[ig.code]:
			c.addf(a, Error, tok(ig), "lint:ignore names %q, which is not a suppressible script code (S0 parse errors and plan codes cannot be ignored in source)", ig.code)
		default:
			active = append(active, ig)
		}
	}
	var kept []Diagnostic
	for _, d := range c.report.Diags {
		line := posLine(d.Pos)
		matched := false
		for _, ig := range active {
			if ig.code == d.Code && line != 0 && (ig.line == line || ig.line == line-1) {
				ig.used = true
				matched = true
			}
		}
		if !matched {
			kept = append(kept, d)
		}
	}
	c.report.Diags = kept
	for _, ig := range active {
		if !ig.used {
			c.addf(a, Warning, tok(ig), "lint:ignore %s directive suppresses nothing", ig.code)
		}
	}
}
