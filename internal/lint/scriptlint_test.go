package lint

import (
	"strings"
	"testing"
)

// cleanScript is a correct two-consumer script: every analyzer must
// stay silent on it.
const cleanScript = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
OUTPUT R1 TO "o1";
`

func findings(t *testing.T, src string) []Diagnostic {
	t.Helper()
	r := AnalyzeScriptSource(src, "test.scope")
	return r.Diags
}

func codes(ds []Diagnostic) string {
	var cs []string
	for _, d := range ds {
		cs = append(cs, d.Code)
	}
	return strings.Join(cs, ",")
}

func requireCode(t *testing.T, ds []Diagnostic, code, msgFragment string) Diagnostic {
	t.Helper()
	for _, d := range ds {
		if d.Code == code && strings.Contains(d.Message, msgFragment) {
			if !strings.HasPrefix(d.Pos, "test.scope:") {
				t.Errorf("%s finding has pos %q, want file:line:col", code, d.Pos)
			}
			return d
		}
	}
	t.Fatalf("no %s finding containing %q; got: %v", code, msgFragment, ds)
	return Diagnostic{}
}

func TestScriptCleanIsSilent(t *testing.T) {
	if ds := findings(t, cleanScript); len(ds) != 0 {
		t.Fatalf("clean script has findings: %v", ds)
	}
}

func TestScriptParseFailure(t *testing.T) {
	ds := findings(t, "THIS IS NOT SCOPE")
	if len(ds) != 1 || ds[0].Code != "S0" || ds[0].Severity != Error {
		t.Fatalf("unparsable script should yield one S0 error, got %v", ds)
	}
}

func TestUnusedAssign(t *testing.T) {
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R1 = SELECT A FROM R0;
R2 = SELECT B FROM R0;
OUTPUT R1 TO "o1";
`
	ds := findings(t, src)
	d := requireCode(t, ds, "S1", `result "R2" is never referenced`)
	if d.Severity != Warning {
		t.Errorf("S1 severity = %v, want warning", d.Severity)
	}
	if got := codes(ds); got != "S1" {
		t.Errorf("findings = %s, want exactly one S1", got)
	}
}

func TestShadowedAssign(t *testing.T) {
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R1 = SELECT A FROM R0;
R1 = SELECT B FROM R0;
OUTPUT R1 TO "o1";
`
	ds := findings(t, src)
	requireCode(t, ds, "S1", `shadows the assignment at statement 2`)
}

func TestShadowUsedBetween(t *testing.T) {
	// The first R1 binding is consumed by R2 before being shadowed:
	// only the shadow finding may fire, not unused.
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R1 = SELECT A FROM R0;
R2 = SELECT A FROM R1;
R1 = SELECT B FROM R0;
OUTPUT R1 TO "o1";
OUTPUT R2 TO "o2";
`
	ds := findings(t, src)
	requireCode(t, ds, "S1", "shadows")
	for _, d := range ds {
		if strings.Contains(d.Message, "never referenced") {
			t.Errorf("first binding is used before the shadow; unexpected %v", d)
		}
	}
}

func TestUnknownColumn(t *testing.T) {
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R1 = SELECT A,NoSuch FROM R0;
OUTPUT R1 TO "o1";
`
	ds := findings(t, src)
	d := requireCode(t, ds, "S2", `column "NoSuch" is absent`)
	if d.Severity != Error {
		t.Errorf("S2 severity = %v, want error", d.Severity)
	}
}

func TestUnknownColumnInWhereAndGroupBy(t *testing.T) {
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R1 = SELECT A FROM R0 WHERE Bogus > 1;
R2 = SELECT A,Sum(B) as S FROM R0 GROUP BY Phantom;
OUTPUT R1 TO "o1";
OUTPUT R2 TO "o2";
`
	ds := findings(t, src)
	requireCode(t, ds, "S2", `"Bogus"`)
	requireCode(t, ds, "S2", `"Phantom"`)
}

func TestUnknownQualifier(t *testing.T) {
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
T0 = EXTRACT A,B FROM "test2.log" USING LogExtractor;
R1 = SELECT R0.A,T0.B FROM R0,T0 WHERE R0.A=Elsewhere.B;
OUTPUT R1 TO "o1";
`
	ds := findings(t, src)
	requireCode(t, ds, "S2", `qualifier "Elsewhere"`)
}

func TestUnknownQualifiedColumn(t *testing.T) {
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R1 = SELECT R0.Ghost FROM R0;
OUTPUT R1 TO "o1";
`
	ds := findings(t, src)
	requireCode(t, ds, "S2", `column R0.Ghost is absent`)
}

func TestHavingSeesAggregateAliases(t *testing.T) {
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R1 = SELECT A,Sum(B) as S FROM R0 GROUP BY A HAVING S > 10;
OUTPUT R1 TO "o1";
`
	if ds := findings(t, src); len(ds) != 0 {
		t.Fatalf("HAVING over the aggregate alias is legal; got %v", ds)
	}
}

func TestOutputOrderByUnknownColumn(t *testing.T) {
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R1 = SELECT A FROM R0;
OUTPUT R1 TO "o1" ORDER BY B;
`
	ds := findings(t, src)
	requireCode(t, ds, "S2", `ORDER BY column "B"`)
}

func TestDeadStatement(t *testing.T) {
	// R1 is referenced (by R2), but the chain never reaches an OUTPUT:
	// R1 is S3, R2 is S1 (unreferenced), and the live chain is silent.
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R1 = SELECT A FROM R0;
R2 = SELECT A FROM R1;
R3 = SELECT B FROM R0;
OUTPUT R3 TO "o1";
`
	ds := findings(t, src)
	d := requireCode(t, ds, "S3", `result "R1" is consumed only by statements that never reach an OUTPUT`)
	if d.Severity != Warning {
		t.Errorf("S3 severity = %v, want warning", d.Severity)
	}
	requireCode(t, ds, "S1", `result "R2" is never referenced`)
	for _, d := range ds {
		if strings.Contains(d.Message, `"R0"`) || strings.Contains(d.Message, `"R3"`) {
			t.Errorf("live statement flagged: %v", d)
		}
	}
}

func TestUnionSchemaDerivation(t *testing.T) {
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
T0 = EXTRACT A,B FROM "test2.log" USING LogExtractor;
U = SELECT * FROM R0 UNION ALL SELECT * FROM T0;
R1 = SELECT Nope FROM U;
OUTPUT R1 TO "o1";
`
	// Union schema derivation may be partial; the only hard requirement
	// is no panic and no false positive on the legal parts.
	ds := findings(t, src)
	for _, d := range ds {
		if d.Code == "S2" && !strings.Contains(d.Message, "Nope") {
			t.Errorf("unexpected S2 on a legal reference: %v", d)
		}
	}
}

func TestAnalyzeScriptNil(t *testing.T) {
	if r := AnalyzeScript(nil, "x"); !r.Empty() {
		t.Fatalf("nil script should produce an empty report, got %v", r.Diags)
	}
}
