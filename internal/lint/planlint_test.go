package lint_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cost"
	"repro/internal/lint"
	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/rules"
)

// optimizeS1 optimizes the paper's motivating script with CSE on under
// the default cluster and the SCOPE rule profile, returning the result
// and the matching analyzer configuration. Every corruption test
// re-optimizes so mutations cannot leak between tests.
func optimizeS1(t *testing.T) (*opt.Result, lint.PlanConfig) {
	t.Helper()
	w := bench.Small("S1", bench.ScriptS1)
	m, err := logical.BuildSource(w.Script, w.Cat)
	if err != nil {
		t.Fatal(err)
	}
	opts := opt.DefaultOptions()
	opts.Rules = rules.SCOPEProfile()
	res, err := opt.Optimize(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == res.Phase1Plan || res.Stats.BudgetExhausted {
		t.Fatal("S1 with CSE should be won by a consolidated phase-2 plan")
	}
	model := cost.NewModel(opts.Cluster)
	return res, lint.PlanConfig{CSE: true, Consolidated: true, Model: &model}
}

// sharedSpool returns the plan's spool node together with its
// consumers (it must have at least two for the corruptions to mean
// anything).
func sharedSpool(t *testing.T, root *plan.Node) (sp *plan.Node, parents []*plan.Node) {
	t.Helper()
	spools := plan.FindAll(root, relop.KindPhysSpool)
	if len(spools) != 1 {
		t.Fatalf("S1 plan has %d spools, want 1", len(spools))
	}
	sp = spools[0]
	for _, n := range plan.Operators(root) {
		for _, c := range n.Children {
			if c == sp {
				parents = append(parents, n)
				break
			}
		}
	}
	if len(parents) < 2 {
		t.Fatalf("spool has %d consumers, want >= 2", len(parents))
	}
	return sp, parents
}

func replaceChild(t *testing.T, parent, old, new *plan.Node) {
	t.Helper()
	for i, c := range parent.Children {
		if c == old {
			parent.Children[i] = new
			return
		}
	}
	t.Fatal("old child not found under parent")
}

func hasCode(ds []lint.Diagnostic, code, fragment string) bool {
	for _, d := range ds {
		if d.Code == code && strings.Contains(d.Message, fragment) {
			return true
		}
	}
	return false
}

// TestConsolidatedPlanClean pins the baseline: the real optimizer's
// consolidated S1 plan passes every analyzer under the strict
// configuration.
func TestConsolidatedPlanClean(t *testing.T) {
	res, cfg := optimizeS1(t)
	if r := lint.AnalyzePlan(res.Plan, cfg); !r.Empty() {
		t.Fatalf("consolidated S1 plan has findings:\n%s", r)
	}
}

// TestP2ConflictingPins is the subsystem's acceptance case: corrupt a
// consolidated plan so two consumer paths reach the shared group under
// different pinned optimization contexts, and P2 must flag it with its
// stable code.
func TestP2ConflictingPins(t *testing.T) {
	res, cfg := optimizeS1(t)
	sp, parents := sharedSpool(t, res.Plan)
	rogue := *sp
	rogue.CtxKey = sp.CtxKey + "|rogue-pin"
	replaceChild(t, parents[0], sp, &rogue)

	r := lint.AnalyzePlan(res.Plan, cfg)
	if !hasCode(r.Diags, "P2", "conflicting pinned contexts") {
		t.Fatalf("conflicting pins not flagged by P2; findings:\n%s", r)
	}
	for _, d := range r.Diags {
		if d.Code == "P2" {
			if d.Severity != lint.Error {
				t.Errorf("P2 severity = %v, want error", d.Severity)
			}
			if d.Analyzer != "pin-consistency" {
				t.Errorf("P2 analyzer = %q, want pin-consistency", d.Analyzer)
			}
		}
	}
}

// TestP2DivergentDelivery corrupts the delivered physical properties on
// one consumer path while keeping the pinned context: P2 must notice
// the divergence.
func TestP2DivergentDelivery(t *testing.T) {
	res, cfg := optimizeS1(t)
	sp, parents := sharedSpool(t, res.Plan)
	rogue := *sp
	rogue.Dlvd.Order = nil
	if rogue.Dlvd.Order.Equal(sp.Dlvd.Order) && rogue.Dlvd.Part.Equal(sp.Dlvd.Part) {
		if rogue.Dlvd.Part.Kind == props.PartSerial {
			rogue.Dlvd.Part.Kind = props.PartBroadcast
		} else {
			rogue.Dlvd.Part.Kind = props.PartSerial
		}
	}
	replaceChild(t, parents[0], sp, &rogue)

	r := lint.AnalyzePlan(res.Plan, cfg)
	if !hasCode(r.Diags, "P2", "on one consumer path but") &&
		!hasCode(r.Diags, "P1", "distinct Spool nodes") {
		t.Fatalf("divergent delivery not flagged; findings:\n%s", r)
	}
}

// TestP1DuplicateSpool duplicates the spool node itself (same group,
// same context): the winner cache must never hand out two distinct
// materializations of one (group, context) pair, and the DAG cost
// model would charge them as one.
func TestP1DuplicateSpool(t *testing.T) {
	res, cfg := optimizeS1(t)
	sp, parents := sharedSpool(t, res.Plan)
	dup := *sp
	replaceChild(t, parents[0], sp, &dup)

	r := lint.AnalyzePlan(res.Plan, cfg)
	if !hasCode(r.Diags, "P1", "distinct Spool nodes") {
		t.Fatalf("duplicate spool not flagged by P1; findings:\n%s", r)
	}
}

// TestSingleConsumerSpool bypasses the spool on one path so it keeps a
// single consumer: P3 must flag the read count below two. (Consumer
// counting deliberately uses DAG path multiplicities, not parent-edge
// counts — one pointer-shared consumer can read a spool twice.)
func TestSingleConsumerSpool(t *testing.T) {
	res, cfg := optimizeS1(t)
	sp, parents := sharedSpool(t, res.Plan)
	replaceChild(t, parents[0], sp, sp.Children[0])

	r := lint.AnalyzePlan(res.Plan, cfg)
	if !hasCode(r.Diags, "P3", "sharing requires at least two consumers") {
		t.Fatalf("read count below two not flagged by P3; findings:\n%s", r)
	}
}

// TestP4DuplicateComputation clones the shared subplan onto one
// consumer path (recomputation instead of sharing): P4 must flag the
// two structurally equal subplans.
func TestP4DuplicateComputation(t *testing.T) {
	res, cfg := optimizeS1(t)
	sp, parents := sharedSpool(t, res.Plan)
	clone := *sp.Children[0] // distinct node, same operator and children
	replaceChild(t, parents[0], sp, &clone)

	r := lint.AnalyzePlan(res.Plan, cfg)
	if !hasCode(r.Diags, "P4", "computed independently") {
		t.Fatalf("duplicated computation not flagged by P4; findings:\n%s", r)
	}
}

// TestP5RedundantSort wraps a sort whose input already delivers the
// requested order: P5 must warn.
func TestP5RedundantSort(t *testing.T) {
	res, cfg := optimizeS1(t)
	var target *plan.Node
	for _, n := range plan.Operators(res.Plan) {
		if !n.Dlvd.Order.Empty() {
			target = n
			break
		}
	}
	if target == nil {
		t.Fatal("SCOPE-profile S1 plan should contain a sorted stream")
	}
	var parent *plan.Node
	for _, n := range plan.Operators(res.Plan) {
		for _, c := range n.Children {
			if c == target {
				parent = n
			}
		}
	}
	if parent == nil {
		t.Fatal("sorted node has no parent")
	}
	redundant := &plan.Node{
		Op:       &relop.Sort{Order: target.Dlvd.Order},
		Children: []*plan.Node{target},
		Group:    target.Group,
		Schema:   target.Schema,
		Rel:      target.Rel,
		Dlvd:     target.Dlvd,
	}
	replaceChild(t, parent, target, redundant)

	r := lint.AnalyzePlan(res.Plan, lint.PlanConfig{CSE: cfg.CSE, Model: cfg.Model})
	if !hasCode(r.Diags, "P5", "redundant sort") {
		t.Fatalf("redundant sort not flagged by P5; findings:\n%s", r)
	}
}

// TestP5RedundantExchange wraps a repartition to the partitioning its
// input already delivers: P5 must warn.
func TestP5RedundantExchange(t *testing.T) {
	res, cfg := optimizeS1(t)
	var target *plan.Node
	for _, n := range plan.Operators(res.Plan) {
		if n.Dlvd.Part.Kind == props.PartHash {
			target = n
			break
		}
	}
	if target == nil {
		t.Skip("no hash-partitioned stream in this plan")
	}
	var parent *plan.Node
	for _, n := range plan.Operators(res.Plan) {
		for _, c := range n.Children {
			if c == target {
				parent = n
			}
		}
	}
	if parent == nil {
		t.Fatal("hash-partitioned node has no parent")
	}
	redundant := &plan.Node{
		Op:       &relop.Repartition{To: target.Dlvd.Part},
		Children: []*plan.Node{target},
		Group:    target.Group,
		Schema:   target.Schema,
		Rel:      target.Rel,
		Dlvd:     target.Dlvd,
	}
	replaceChild(t, parent, target, redundant)

	r := lint.AnalyzePlan(res.Plan, lint.PlanConfig{CSE: cfg.CSE, Model: cfg.Model})
	if !hasCode(r.Diags, "P5", "redundant exchange") {
		t.Fatalf("redundant exchange not flagged by P5; findings:\n%s", r)
	}
}

// TestAnalyzePlanNil covers the nil-root guard.
func TestAnalyzePlanNil(t *testing.T) {
	if r := lint.AnalyzePlan(nil, lint.PlanConfig{}); !r.Empty() {
		t.Fatalf("nil root should yield an empty report, got %v", r.Diags)
	}
}

// TestPlanPaths checks the operator-path location scheme.
func TestPlanPaths(t *testing.T) {
	res, _ := optimizeS1(t)
	paths := lint.PlanPaths(res.Plan)
	root := paths[res.Plan]
	if !strings.Contains(root, "(G") {
		t.Errorf("root path %q should carry its memo group", root)
	}
	for n, p := range paths {
		if n != res.Plan && !strings.Contains(p, "/") {
			t.Errorf("non-root path %q should be a chain", p)
		}
	}
}

// TestP3RoundCoherence: the round-trace bookkeeping checks accept a
// real optimizer run (pruned rounds recorded as +Inf) and reject
// fabricated traces where a pruned round carries a finite cost or is
// selected as best.
func TestP3RoundCoherence(t *testing.T) {
	res, cfg := optimizeS1(t)
	for _, r := range res.Rounds {
		cfg.Rounds = append(cfg.Rounds, lint.RoundCost{
			Cost: r.Cost, Pruned: r.Pruned, Fallback: r.Fallback, Best: r.Best,
		})
	}
	if r := lint.AnalyzePlan(res.Plan, cfg); !r.Empty() {
		t.Fatalf("real round traces must lint clean:\n%s", r)
	}

	bad := cfg
	bad.Rounds = append([]lint.RoundCost{}, cfg.Rounds...)
	bad.Rounds = append(bad.Rounds, lint.RoundCost{Cost: 123, Pruned: true})
	r := lint.AnalyzePlan(res.Plan, bad)
	if !hasCode(r.Diags, "P3", "finite cost") {
		t.Errorf("finite-cost pruned round not flagged:\n%s", r)
	}

	bad = cfg
	bad.Rounds = append([]lint.RoundCost{}, cfg.Rounds...)
	bad.Rounds = append(bad.Rounds, lint.RoundCost{Cost: math.Inf(1), Pruned: true, Best: true})
	r = lint.AnalyzePlan(res.Plan, bad)
	if !hasCode(r.Diags, "P3", "marked best but was pruned") {
		t.Errorf("pruned best round not flagged:\n%s", r)
	}
}
