package lint

import (
	"strings"
	"testing"
)

// scriptWithUnused produces one S1 finding ("B is never referenced")
// on line 3 when the directive argument is empty.
func scriptWithUnused(directive string) string {
	lines := []string{
		`A = EXTRACT X, Y FROM "t.log" USING E;`,
		directive,
		`B = SELECT X FROM A;`,
		`OUTPUT A TO "out";`,
	}
	if directive == "" {
		lines = append(lines[:1], lines[2:]...)
	}
	return strings.Join(lines, "\n")
}

func codesOf(r *Report) []string {
	var out []string
	for _, d := range r.Diags {
		out = append(out, d.Code)
	}
	return out
}

func TestFilterByCode(t *testing.T) {
	r := &Report{}
	r.Addf("S1", "unused-assign", Warning, "f:1:1", "one")
	r.Addf("P4", "missed-cse", Warning, "plan", "two")
	r.Addf("S1", "unused-assign", Warning, "f:2:1", "three")
	got := r.Filter("S1")
	if want := []string{"P4"}; strings.Join(codesOf(got), ",") != strings.Join(want, ",") {
		t.Errorf("Filter(S1) kept %v, want %v", codesOf(got), want)
	}
	if len(r.Diags) != 3 {
		t.Error("Filter mutated the receiver")
	}
	if got := r.Filter(); got != r {
		t.Error("Filter() with no codes should return the report unchanged")
	}
}

func TestIgnoreDirectiveLineAbove(t *testing.T) {
	src := scriptWithUnused("//lint:ignore S1 kept for the next revision")
	r := AnalyzeScriptSource(src, "t.scope")
	if !r.Empty() {
		t.Errorf("directive on the line above did not suppress: %v", r.Diags)
	}
}

func TestIgnoreDirectiveSameLine(t *testing.T) {
	src := scriptWithUnused("")
	src = strings.Replace(src, "B = SELECT X FROM A;",
		"B = SELECT X FROM A; //lint:ignore S1 kept for the next revision", 1)
	r := AnalyzeScriptSource(src, "t.scope")
	if !r.Empty() {
		t.Errorf("trailing directive did not suppress: %v", r.Diags)
	}
}

func TestIgnoreDirectiveBaseline(t *testing.T) {
	r := AnalyzeScriptSource(scriptWithUnused(""), "t.scope")
	if got := codesOf(r); strings.Join(got, ",") != "S1" {
		t.Fatalf("baseline script should produce exactly one S1, got %v", got)
	}
}

func TestIgnoreDirectiveUnknownCode(t *testing.T) {
	src := scriptWithUnused("//lint:ignore S9 no such code")
	r := AnalyzeScriptSource(src, "t.scope")
	found := false
	for _, d := range r.Diags {
		if d.Code == "S4" && d.Severity == Error && strings.Contains(d.Message, `"S9"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("unknown code in directive should be an S4 error, got %v", r.Diags)
	}
	// The S1 finding itself must survive: the broken directive
	// suppressed nothing.
	if !strings.Contains(strings.Join(codesOf(r), ","), "S1") {
		t.Errorf("S1 finding disappeared despite a broken directive: %v", r.Diags)
	}
}

func TestIgnoreDirectivePlanCodeRejected(t *testing.T) {
	src := scriptWithUnused("//lint:ignore P4 plan codes have no script line")
	r := AnalyzeScriptSource(src, "t.scope")
	found := false
	for _, d := range r.Diags {
		if d.Code == "S4" && strings.Contains(d.Message, "not a suppressible script code") {
			found = true
		}
	}
	if !found {
		t.Errorf("plan code in directive should be an S4 error, got %v", r.Diags)
	}
}

func TestIgnoreDirectiveMissingReason(t *testing.T) {
	src := scriptWithUnused("//lint:ignore S1")
	r := AnalyzeScriptSource(src, "t.scope")
	found := false
	for _, d := range r.Diags {
		if d.Code == "S4" && d.Severity == Error && strings.Contains(d.Message, "missing reason") {
			found = true
		}
	}
	if !found {
		t.Errorf("reasonless directive should be an S4 error, got %v", r.Diags)
	}
}

func TestIgnoreDirectiveUnused(t *testing.T) {
	src := `A = EXTRACT X, Y FROM "t.log" USING E;
//lint:ignore S1 nothing here to suppress
OUTPUT A TO "out";`
	r := AnalyzeScriptSource(src, "t.scope")
	found := false
	for _, d := range r.Diags {
		if d.Code == "S4" && d.Severity == Warning && strings.Contains(d.Message, "suppresses nothing") {
			found = true
		}
	}
	if !found {
		t.Errorf("unused directive should be an S4 warning, got %v", r.Diags)
	}
}

func TestParseScriptIgnores(t *testing.T) {
	igs := parseScriptIgnores("a\n//lint:ignore S1 why not\n//lint:ignore\nplain line\n")
	if len(igs) != 2 {
		t.Fatalf("parsed %d directives, want 2", len(igs))
	}
	if igs[0].line != 2 || igs[0].code != "S1" || igs[0].reason != "why not" || igs[0].malformed != "" {
		t.Errorf("directive 0 = %+v", igs[0])
	}
	if igs[1].line != 3 || igs[1].malformed == "" {
		t.Errorf("directive 1 should be malformed, got %+v", igs[1])
	}
}

func TestPosLine(t *testing.T) {
	cases := map[string]int{
		"f.scope:12:3":    12,
		"a:b:c":           0,
		"noseparator":     0,
		"Sequence/Output": 0,
		"x:7:1":           7,
	}
	for pos, want := range cases {
		if got := posLine(pos); got != want {
			t.Errorf("posLine(%q) = %d, want %d", pos, got, want)
		}
	}
}
