package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/plan"
	"repro/internal/relop"
)

// TestP6RebuiltCachedSubexpression: when the session cache claims to
// hold a subexpression the plan recomputes, P6 must warn — once per
// fingerprint.
func TestP6RebuiltCachedSubexpression(t *testing.T) {
	res, cfg := optimizeS1(t)
	sp, _ := sharedSpool(t, res.Plan)
	target := sp.Children[0]
	if target.FP == 0 {
		t.Fatal("spool child should carry a fingerprint")
	}
	cfg.CacheHolds = func(fp uint64) bool { return fp == target.FP }

	r := lint.AnalyzePlan(res.Plan, cfg)
	found := 0
	for _, d := range r.Diags {
		if d.Code == "P6" {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("P6 fired %d time(s), want exactly 1; findings:\n%s", found, r)
	}
}

// TestP6SilentWithoutCacheOrHit: no probe installed, or a probe that
// never matches, must produce no P6 findings.
func TestP6SilentWithoutCacheOrHit(t *testing.T) {
	res, cfg := optimizeS1(t)
	r := lint.AnalyzePlan(res.Plan, cfg)
	for _, d := range r.Diags {
		if d.Code == "P6" {
			t.Fatalf("P6 fired without a cache probe: %s", d)
		}
	}
	cfg.CacheHolds = func(uint64) bool { return false }
	r = lint.AnalyzePlan(res.Plan, cfg)
	for _, d := range r.Diags {
		if d.Code == "P6" {
			t.Fatalf("P6 fired although the cache holds nothing: %s", d)
		}
	}
}

// TestP6SkipsCacheScans: a plan that already reads the cached result
// through a CacheScan is not "rebuilding" it.
func TestP6SkipsCacheScans(t *testing.T) {
	res, cfg := optimizeS1(t)
	sp, _ := sharedSpool(t, res.Plan)
	target := sp.Children[0]
	// Replace the spool's input with a CacheScan for the same
	// fingerprint, as the optimizer would on a hit.
	sp.Children[0] = &plan.Node{
		Op: &relop.PhysCacheScan{
			Path:    "__cache/x",
			Columns: target.Schema,
			Part:    target.Dlvd.Part,
			Order:   target.Dlvd.Order,
			FP:      target.FP,
		},
		Group:  target.Group,
		CtxKey: target.CtxKey,
		Schema: target.Schema,
		Rel:    target.Rel,
		Dlvd:   target.Dlvd,
		FP:     target.FP,
	}
	cfg.CacheHolds = func(fp uint64) bool { return fp == target.FP }
	// The mutation can upset other analyzers (cost coherence); only
	// P6's behavior is under test.
	r := lint.AnalyzePlan(res.Plan, cfg)
	for _, d := range r.Diags {
		if d.Code == "P6" {
			t.Fatalf("P6 flagged a plan that reads the cache: %s", d)
		}
	}
}

// TestP4TreatsCacheScanAsSharingFrontier: identical consumer
// pipelines above two reads of one cached artifact are compensation,
// not a missed CSE.
func TestP4TreatsCacheScanAsSharingFrontier(t *testing.T) {
	res, cfg := optimizeS1(t)
	sp, parents := sharedSpool(t, res.Plan)
	target := sp.Children[0]
	cs := &plan.Node{
		Op: &relop.PhysCacheScan{
			Path:    "__cache/x",
			Columns: target.Schema,
			Part:    target.Dlvd.Part,
			Order:   target.Dlvd.Order,
			FP:      target.FP,
		},
		Group:  sp.Group,
		CtxKey: sp.CtxKey,
		Schema: sp.Schema,
		Rel:    sp.Rel,
		Dlvd:   sp.Dlvd,
		FP:     target.FP,
	}
	// Give every consumer its own CacheScan instance: without the
	// frontier exemption, identical sibling reads would look like a
	// missed CSE to P4.
	for _, p := range parents {
		for i, c := range p.Children {
			if c == sp {
				cp := *cs
				p.Children[i] = &cp
			}
		}
	}
	r := lint.AnalyzePlan(res.Plan, lint.PlanConfig{CSE: true, Model: cfg.Model})
	for _, d := range r.Diags {
		if d.Code == "P4" {
			t.Fatalf("P4 flagged cache reads as a missed CSE: %s", d)
		}
	}
}
