package lint

import (
	"fmt"

	"repro/internal/sqlparse"
)

// ScriptAnalyzer is one named check over a parsed SCOPE script.
type ScriptAnalyzer struct {
	// Name is the analyzer's short kebab-case name.
	Name string
	// Code is the stable diagnostic code every finding carries.
	Code string
	// Doc is a one-line description for catalogs and CLI help.
	Doc string
	run func(c *scriptCtx)
}

// scriptCtx is the shared binding state handed to each script
// analyzer.
type scriptCtx struct {
	file   string
	script *sqlparse.Script
	// assigns lists the assignment statements in order with their
	// statement index.
	assigns []assignInfo
	// schemas maps an assignment name to its most recent derived
	// output schema (nil when it could not be derived).
	schemas map[string]*derivedSchema
	report  *Report
	// ignores holds the //lint:ignore directives extracted from the
	// raw source (only populated via AnalyzeScriptSource — a parsed
	// script carries no comments).
	ignores []*scriptIgnore
}

type assignInfo struct {
	idx  int
	stmt *sqlparse.AssignStmt
}

// derivedSchema is the statically derived output column list of one
// assignment. Complete is false when some output column could not be
// named (the analyzers then skip checks that would need it).
type derivedSchema struct {
	cols     map[string]bool
	order    []string
	complete bool
}

func (c *scriptCtx) pos(tok sqlparse.Token) string {
	return fmt.Sprintf("%s:%d:%d", c.file, tok.Line, tok.Col)
}

func (c *scriptCtx) addf(a *ScriptAnalyzer, sev Severity, tok sqlparse.Token, format string, args ...any) {
	c.report.Addf(a.Code, a.Name, sev, c.pos(tok), format, args...)
}

// ScriptAnalyzers returns the script-analyzer catalog in code order.
func ScriptAnalyzers() []*ScriptAnalyzer {
	return []*ScriptAnalyzer{
		{Name: "unused-assign", Code: "S1",
			Doc: "intermediate assignments must be referenced, and never shadow an earlier one",
			run: runUnusedAssign},
		{Name: "unknown-column", Code: "S2",
			Doc: "column references must exist in the derived schema of their sources",
			run: runUnknownColumn},
		{Name: "dead-statement", Code: "S3",
			Doc: "every statement's result must transitively reach an OUTPUT",
			run: runDeadStatement},
		// S4 runs last: it applies the //lint:ignore directives to the
		// findings above and flags malformed, unknown, or unused
		// directives.
		{Name: "ignore-directive", Code: "S4",
			Doc: "lint:ignore directives must name a suppressible script code, carry a reason, and suppress a finding",
			run: runIgnoreDirective},
	}
}

// AnalyzeScript runs every script analyzer over a parsed script and
// returns the sorted report. file labels diagnostic positions. A
// parsed script carries no comments, so //lint:ignore directives are
// only honored through AnalyzeScriptSource.
func AnalyzeScript(script *sqlparse.Script, file string) *Report {
	return analyzeScript(script, file, nil)
}

func analyzeScript(script *sqlparse.Script, file string, ignores []*scriptIgnore) *Report {
	r := &Report{}
	if script == nil {
		return r
	}
	if file == "" {
		file = "<script>"
	}
	c := &scriptCtx{file: file, script: script, schemas: map[string]*derivedSchema{}, report: r, ignores: ignores}
	for i, st := range script.Stmts {
		if as, ok := st.(*sqlparse.AssignStmt); ok {
			c.assigns = append(c.assigns, assignInfo{idx: i, stmt: as})
		}
	}
	c.deriveSchemas()
	for _, a := range ScriptAnalyzers() {
		a.run(c)
	}
	r.Sort()
	return r
}

// CodeParse is the reserved diagnostic code for scripts that do not
// parse. It has no analyzer entry — there is no AST to analyze — but
// it is registered alongside the catalogs so every emitted code is
// accounted for.
const CodeParse = "S0"

// ReservedCodes lists the registered codes that carry no catalog
// entry. The scopevet diagcode analyzer and the catalog-closure test
// treat these as part of the closed code set.
func ReservedCodes() []string { return []string{CodeParse} }

// AnalyzeScriptSource parses src and runs the script analyzers. A
// parse failure becomes a single S0 error diagnostic rather than an
// error return, so callers can treat unparsable and unclean scripts
// uniformly. //lint:ignore CODE reason comments in src suppress
// matching findings on their own line or the line below; the S4
// analyzer vets the directives themselves.
func AnalyzeScriptSource(src, file string) *Report {
	script, err := sqlparse.Parse(src)
	if err != nil {
		r := &Report{}
		if file == "" {
			file = "<script>"
		}
		r.Addf(CodeParse, "parse", Error, file, "script does not parse: %v", err)
		return r
	}
	return analyzeScript(script, file, parseScriptIgnores(src))
}

// deriveSchemas computes each assignment's output columns in statement
// order, mirroring the binder's naming rules (alias, else column
// name; aggregates need an alias).
func (c *scriptCtx) deriveSchemas() {
	for _, ai := range c.assigns {
		c.schemas[ai.stmt.Name] = c.deriveSchema(ai.stmt.Query)
	}
}

func newDerived() *derivedSchema {
	return &derivedSchema{cols: map[string]bool{}, complete: true}
}

func (d *derivedSchema) add(col string) {
	if col == "" {
		d.complete = false
		return
	}
	if !d.cols[col] {
		d.cols[col] = true
		d.order = append(d.order, col)
	}
}

func (c *scriptCtx) deriveSchema(q sqlparse.Query) *derivedSchema {
	switch query := q.(type) {
	case *sqlparse.ExtractQuery:
		d := newDerived()
		for _, col := range query.Cols {
			d.add(col.Name)
		}
		return d
	case *sqlparse.SelectQuery:
		d := newDerived()
		for _, it := range query.Items {
			d.add(itemName(it))
		}
		return d
	case *sqlparse.UnionQuery:
		if len(query.Sources) > 0 {
			if s := c.schemas[query.Sources[0]]; s != nil {
				return s
			}
		}
		return nil
	}
	return nil
}

// itemName returns the output column name of a select item, or "" when
// it cannot be determined statically.
func itemName(it sqlparse.SelectItem) string {
	if it.As != "" {
		return it.As
	}
	if cr, ok := it.Expr.(*sqlparse.ColRefAST); ok {
		return cr.Name
	}
	return ""
}

// sourcesOf lists the named intermediates a statement consumes.
func sourcesOf(st sqlparse.Stmt) []string {
	switch s := st.(type) {
	case *sqlparse.AssignStmt:
		switch q := s.Query.(type) {
		case *sqlparse.SelectQuery:
			return q.From
		case *sqlparse.UnionQuery:
			return q.Sources
		}
	case *sqlparse.OutputStmt:
		return []string{s.Src}
	}
	return nil
}

// runUnusedAssign is S1: an assignment whose name is never referenced
// by a later statement is dead weight, and an assignment reassigning
// an already-bound name shadows it (the binder rejects the script; the
// analyzer pinpoints both sites).
func runUnusedAssign(c *scriptCtx) {
	a := ScriptAnalyzers()[0]
	lastAssign := map[string]int{}
	for _, ai := range c.assigns {
		if prev, dup := lastAssign[ai.stmt.Name]; dup {
			c.addf(a, Warning, ai.stmt.Tok,
				"assignment to %q shadows the assignment at statement %d; the earlier result becomes unreachable",
				ai.stmt.Name, prev+1)
		}
		lastAssign[ai.stmt.Name] = ai.idx
	}
	for _, ai := range c.assigns {
		used := false
		for j := ai.idx + 1; j < len(c.script.Stmts) && !used; j++ {
			// A reassignment of the same name ends this binding's
			// visibility.
			if as, ok := c.script.Stmts[j].(*sqlparse.AssignStmt); ok && as.Name == ai.stmt.Name {
				break
			}
			for _, src := range sourcesOf(c.script.Stmts[j]) {
				if src == ai.stmt.Name {
					used = true
					break
				}
			}
		}
		if !used {
			c.addf(a, Warning, ai.stmt.Tok,
				"result %q is never referenced by a later statement", ai.stmt.Name)
		}
	}
}

// collectColRefs walks an expression tree and appends every column
// reference.
func collectColRefs(e sqlparse.Expr, out *[]*sqlparse.ColRefAST) {
	switch x := e.(type) {
	case *sqlparse.ColRefAST:
		*out = append(*out, x)
	case *sqlparse.CallExpr:
		for _, arg := range x.Args {
			collectColRefs(arg, out)
		}
	case *sqlparse.BinaryExpr:
		collectColRefs(x.L, out)
		collectColRefs(x.R, out)
	}
}

// runUnknownColumn is S2: every column reference in a SELECT (items,
// WHERE, GROUP BY, HAVING) must exist in the derived schema of its
// sources, and OUTPUT ORDER BY columns must exist in the output's
// source. Checks are skipped when a source schema could not be fully
// derived, so the analyzer never produces false positives on scripts
// it does not understand.
func runUnknownColumn(c *scriptCtx) {
	a := ScriptAnalyzers()[1]
	checkRef := func(ref *sqlparse.ColRefAST, from []string, extra map[string]bool) {
		if ref.Qualifier != "" {
			inFrom := false
			for _, f := range from {
				if f == ref.Qualifier {
					inFrom = true
					break
				}
			}
			if !inFrom {
				c.addf(a, Error, ref.Tok,
					"qualifier %q of column %s names no FROM source", ref.Qualifier, ref)
				return
			}
			s := c.schemas[ref.Qualifier]
			if s == nil || !s.complete {
				return
			}
			if !s.cols[ref.Name] {
				c.addf(a, Error, ref.Tok,
					"column %s is absent from %q's derived schema %v", ref, ref.Qualifier, s.order)
			}
			return
		}
		for _, f := range from {
			s := c.schemas[f]
			if s == nil || !s.complete {
				return // unknown source schema: stay silent
			}
			if s.cols[ref.Name] {
				return
			}
		}
		if extra[ref.Name] {
			return
		}
		c.addf(a, Error, ref.Tok,
			"column %q is absent from the derived schema of %v", ref.Name, from)
	}
	for _, ai := range c.assigns {
		q, ok := ai.stmt.Query.(*sqlparse.SelectQuery)
		if !ok {
			continue
		}
		// Every FROM source must be a known intermediate for column
		// checks to mean anything.
		known := true
		for _, f := range q.From {
			if c.schemas[f] == nil {
				known = false
				break
			}
		}
		if !known {
			continue
		}
		var refs []*sqlparse.ColRefAST
		for _, it := range q.Items {
			collectColRefs(it.Expr, &refs)
		}
		collectColRefs(q.Where, &refs)
		for i := range q.GroupBy {
			refs = append(refs, &q.GroupBy[i])
		}
		for _, ref := range refs {
			checkRef(ref, q.From, nil)
		}
		if q.Having != nil {
			// HAVING additionally sees the select list's output
			// columns (aggregate aliases).
			aliases := map[string]bool{}
			for _, it := range q.Items {
				if n := itemName(it); n != "" {
					aliases[n] = true
				}
			}
			var hrefs []*sqlparse.ColRefAST
			collectColRefs(q.Having, &hrefs)
			for _, ref := range hrefs {
				checkRef(ref, q.From, aliases)
			}
		}
	}
	for _, st := range c.script.Stmts {
		out, ok := st.(*sqlparse.OutputStmt)
		if !ok {
			continue
		}
		s := c.schemas[out.Src]
		if s == nil || !s.complete {
			continue
		}
		for i := range out.OrderBy {
			ref := &out.OrderBy[i].Col
			if ref.Qualifier == "" && !s.cols[ref.Name] {
				c.addf(a, Error, ref.Tok,
					"ORDER BY column %q is absent from %q's derived schema %v", ref.Name, out.Src, s.order)
			}
		}
	}
}

// runDeadStatement is S3: an assignment that is referenced but whose
// result never transitively reaches an OUTPUT is computed for nothing.
// Assignments with no reference at all are S1's findings and are not
// repeated here.
func runDeadStatement(c *scriptCtx) {
	a := ScriptAnalyzers()[2]
	// Most recent assignment index per name, as seen walking forward:
	// uses resolve to the latest binding before the consuming
	// statement.
	live := map[int]bool{}
	binding := map[string]int{} // name -> statement index of current binding
	bindAt := make([]map[string]int, len(c.script.Stmts))
	for i, st := range c.script.Stmts {
		snapshot := map[string]int{}
		for k, v := range binding {
			snapshot[k] = v
		}
		bindAt[i] = snapshot
		if as, ok := st.(*sqlparse.AssignStmt); ok {
			binding[as.Name] = i
		}
	}
	var mark func(i int)
	mark = func(i int) {
		if live[i] {
			return
		}
		live[i] = true
		for _, src := range sourcesOf(c.script.Stmts[i]) {
			if j, ok := bindAt[i][src]; ok {
				mark(j)
			}
		}
	}
	for i, st := range c.script.Stmts {
		if _, ok := st.(*sqlparse.OutputStmt); ok {
			mark(i)
		}
	}
	// Which assignments are directly referenced at all (S1 covers the
	// unreferenced ones).
	referenced := map[int]bool{}
	for i, st := range c.script.Stmts {
		for _, src := range sourcesOf(st) {
			if j, ok := bindAt[i][src]; ok {
				referenced[j] = true
			}
		}
	}
	for _, ai := range c.assigns {
		if !live[ai.idx] && referenced[ai.idx] {
			c.addf(a, Warning, ai.stmt.Tok,
				"result %q is consumed only by statements that never reach an OUTPUT", ai.stmt.Name)
		}
	}
}
