package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/plan"
	"repro/internal/relop"
)

// TestP7RebuiltWorkloadSubexpression: when the workload's chosen
// materialization set covers a subexpression, an enacted plan that
// recomputes it from scratch must warn — once per fingerprint.
func TestP7RebuiltWorkloadSubexpression(t *testing.T) {
	res, cfg := optimizeS1(t)
	sp, _ := sharedSpool(t, res.Plan)
	target := sp.Children[0]
	if target.FP == 0 {
		t.Fatal("spool child should carry a fingerprint")
	}
	cfg.WorkloadCovered = func(fp uint64) bool { return fp == target.FP }

	r := lint.AnalyzePlan(res.Plan, cfg)
	found := 0
	for _, d := range r.Diags {
		if d.Code == "P7" {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("P7 fired %d time(s), want exactly 1; findings:\n%s", found, r)
	}
}

// TestP7SilentWithoutProbeOrMatch: no workload probe installed, or a
// probe that covers nothing, must produce no P7 findings.
func TestP7SilentWithoutProbeOrMatch(t *testing.T) {
	res, cfg := optimizeS1(t)
	r := lint.AnalyzePlan(res.Plan, cfg)
	for _, d := range r.Diags {
		if d.Code == "P7" {
			t.Fatalf("P7 fired without a workload probe: %s", d)
		}
	}
	cfg.WorkloadCovered = func(uint64) bool { return false }
	r = lint.AnalyzePlan(res.Plan, cfg)
	for _, d := range r.Diags {
		if d.Code == "P7" {
			t.Fatalf("P7 fired although the workload covers nothing: %s", d)
		}
	}
}

// TestP7SkipsCacheScans: a plan that reads the workload artifact
// through a CacheScan honors the global decision — no finding.
func TestP7SkipsCacheScans(t *testing.T) {
	res, cfg := optimizeS1(t)
	sp, _ := sharedSpool(t, res.Plan)
	target := sp.Children[0]
	sp.Children[0] = &plan.Node{
		Op: &relop.PhysCacheScan{
			Path:    "__mqo/x",
			Columns: target.Schema,
			Part:    target.Dlvd.Part,
			Order:   target.Dlvd.Order,
			FP:      target.FP,
		},
		Group:  target.Group,
		CtxKey: target.CtxKey,
		Schema: target.Schema,
		Rel:    target.Rel,
		Dlvd:   target.Dlvd,
		FP:     target.FP,
	}
	cfg.WorkloadCovered = func(fp uint64) bool { return fp == target.FP }
	// The mutation can upset other analyzers (cost coherence); only
	// P7's behavior is under test.
	r := lint.AnalyzePlan(res.Plan, cfg)
	for _, d := range r.Diags {
		if d.Code == "P7" {
			t.Fatalf("P7 flagged a plan that reads the workload artifact: %s", d)
		}
	}
}

// TestP3ExemptsForcedSpools: a spool the workload forced onto a
// single-consumer plan violates P3's read-multiplicity and DAG≤tree
// expectations by design — the extra readers live in other scripts.
// With the spool's input registered in ForcedFPs both checks stand
// down; without it they fire as before.
func TestP3ExemptsForcedSpools(t *testing.T) {
	res, cfg := optimizeS1(t)
	sp, parents := sharedSpool(t, res.Plan)
	target := sp.Children[0]
	// Detach the spool from all but its first consumer, leaving a
	// single-read spool — the shape a forced materialization has in a
	// builder script that consumes the subexpression once.
	detached := false
	for _, p := range parents {
		for i, c := range p.Children {
			if c == sp && detached {
				p.Children[i] = target
			} else if c == sp {
				detached = true
			}
		}
	}

	p3 := func(cfg lint.PlanConfig) int {
		n := 0
		for _, d := range lint.AnalyzePlan(res.Plan, cfg).Diags {
			if d.Code == "P3" {
				n++
			}
		}
		return n
	}
	if got := p3(cfg); got == 0 {
		t.Fatal("single-read spool without ForcedFPs should trip P3")
	}
	cfg.ForcedFPs = map[uint64]bool{target.FP: true}
	if got := p3(cfg); got != 0 {
		t.Fatalf("forced spool still tripped P3 %d time(s)", got)
	}
}
