// Catalog-closure regression tests (external test package: the
// validation codes live in internal/opt, which imports internal/lint,
// so an in-package test could not see them).
package lint_test

import (
	"os"
	"regexp"
	"testing"

	"repro/internal/lint"
	"repro/internal/opt"
)

// allCodes is the full registered diagnostic-code set: script
// analyzers (S), plan analyzers (P), reserved codes (S0), and the
// optimizer's validation codes (V).
func allCodes() []string {
	var out []string
	for _, a := range lint.ScriptAnalyzers() {
		out = append(out, a.Code)
	}
	for _, a := range lint.PlanAnalyzers() {
		out = append(out, a.Code)
	}
	out = append(out, lint.ReservedCodes()...)
	out = append(out, opt.ValidationCodes()...)
	return out
}

// TestCatalogClosed pins the closure invariants the scopevet diagcode
// analyzer relies on: every registered code is well-formed and no
// code is registered twice across the S/P/V catalogs.
func TestCatalogClosed(t *testing.T) {
	shape := regexp.MustCompile(`^[SPV][0-9]+$`)
	seen := map[string]bool{}
	for _, c := range allCodes() {
		if !shape.MatchString(c) {
			t.Errorf("code %q does not match the catalog shape [SPV]<n>", c)
		}
		if seen[c] {
			t.Errorf("code %q is registered more than once across the catalogs", c)
		}
		seen[c] = true
	}
	if !seen["S0"] {
		t.Error("reserved parse code S0 is missing from the registered set")
	}
}

// TestCatalogDocumented requires every registered code to appear in
// DESIGN.md: a diagnostic a user can encounter must have prose
// explaining what it means. The codes are matched as standalone
// tokens so a range like "V1-V7" cannot stand in for the codes inside
// it.
func TestCatalogDocumented(t *testing.T) {
	design, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	for _, c := range allCodes() {
		re := regexp.MustCompile(`\b` + c + `\b`)
		if !re.Match(design) {
			t.Errorf("registered code %s is never mentioned in DESIGN.md", c)
		}
	}
}

// TestLintCodes pins lint.Codes: sorted, duplicate-free, and exactly
// the S/P/reserved set (V codes are opt's).
func TestLintCodes(t *testing.T) {
	codes := lint.Codes()
	want := len(lint.ScriptAnalyzers()) + len(lint.PlanAnalyzers()) + len(lint.ReservedCodes())
	if len(codes) != want {
		t.Fatalf("Codes() returned %d codes, want %d", len(codes), want)
	}
	for i := 1; i < len(codes); i++ {
		if codes[i-1] >= codes[i] {
			t.Errorf("Codes() not sorted/unique at %d: %s >= %s", i, codes[i-1], codes[i])
		}
	}
}
