package lint

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestSeverityString(t *testing.T) {
	cases := map[Severity]string{Info: "info", Warning: "warning", Error: "error", Severity(9): "Severity(9)"}
	for sev, want := range cases {
		if got := sev.String(); got != want {
			t.Errorf("Severity(%d).String() = %q, want %q", int(sev), got, want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Code: "P2", Analyzer: "pin-consistency", Severity: Error,
		Pos: "Sequence/Output(G3)", Message: "conflicting pins"}
	if got, want := d.String(), "Sequence/Output(G3): error: conflicting pins [P2]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	d.Pos = ""
	if got := d.String(); !strings.HasPrefix(got, "<plan>: ") {
		t.Errorf("empty pos should render as <plan>, got %q", got)
	}
}

func TestReportSortAndCounts(t *testing.T) {
	r := &Report{}
	r.Addf("S1", "unused-assign", Warning, "f:2:1", "w1")
	r.Addf("P3", "cost-coherence", Error, "b", "e2")
	r.Addf("P1", "single-spool", Error, "a", "e1")
	r.Addf("P1", "single-spool", Error, "a", "e1-dup")
	if r.Empty() {
		t.Fatal("report with 4 diags reports Empty")
	}
	if got := r.Errors(); got != 3 {
		t.Fatalf("Errors() = %d, want 3", got)
	}
	r.Sort()
	var order []string
	for _, d := range r.Diags {
		order = append(order, d.Code)
	}
	if got, want := strings.Join(order, ","), "P1,P1,P3,S1"; got != want {
		t.Errorf("sorted code order %s, want %s (errors first, then code, then pos)", got, want)
	}
}

func TestReportJSON(t *testing.T) {
	r := &Report{}
	if b, err := r.JSON(); err != nil || string(b) != "[]" {
		t.Fatalf("empty report JSON = %q, %v; want []", b, err)
	}
	r.Addf("P5", "redundant-enforcer", Warning, "Sort(G2)", "redundant sort")
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("JSON output does not decode: %v", err)
	}
	if len(decoded) != 1 || decoded[0]["severity"] != "warning" || decoded[0]["code"] != "P5" {
		t.Errorf("decoded JSON = %v; want one P5 warning with lowercase severity", decoded)
	}
}

func TestReportErr(t *testing.T) {
	r := &Report{}
	if err := r.Err(); err != nil {
		t.Fatalf("empty report Err() = %v, want nil", err)
	}
	r.Addf("V1", "validate", Error, "HashAgg(G4)", "mismatch")
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "[V1]") {
		t.Fatalf("Err() = %v, want it to carry the code", err)
	}
	r.Addf("V2", "validate", Error, "x", "second")
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "1 more finding") {
		t.Fatalf("Err() = %v, want a more-findings suffix", err)
	}
}

func TestReportMerge(t *testing.T) {
	a := &Report{}
	a.Addf("S1", "unused-assign", Warning, "f:1:1", "one")
	b := &Report{}
	b.Addf("S2", "unknown-column", Error, "f:2:2", "two")
	a.Merge(b)
	a.Merge(nil)
	if len(a.Diags) != 2 {
		t.Fatalf("merged report has %d diags, want 2", len(a.Diags))
	}
}

// TestAnalyzerCatalogs pins the catalog invariants without
// duplicating the code lists: plan analyzers carry P1..Pn in order,
// script analyzers S1..Sn in order, and every entry is fully
// populated. Adding an analyzer extends the sequence; this test only
// changes if the numbering scheme itself does.
func TestAnalyzerCatalogs(t *testing.T) {
	for i, a := range PlanAnalyzers() {
		want := fmt.Sprintf("P%d", i+1)
		if a.Code != want || a.Name == "" || a.Doc == "" || a.run == nil {
			t.Errorf("plan analyzer %d = {%s %s}: want code %s with name, doc, and run", i, a.Code, a.Name, want)
		}
	}
	for i, a := range ScriptAnalyzers() {
		want := fmt.Sprintf("S%d", i+1)
		if a.Code != want || a.Name == "" || a.Doc == "" || a.run == nil {
			t.Errorf("script analyzer %d = {%s %s}: want code %s with name, doc, and run", i, a.Code, a.Name, want)
		}
	}
}

func TestSortByFile(t *testing.T) {
	r := &Report{}
	r.Addf("P2", "pin-consistency", Error, "b.scope: Sequence/Output", "plan finding")
	r.Addf("S2", "unknown-column", Error, "a.scope:3:8", "late in a")
	r.Addf("S1", "unused-assign", Warning, "a.scope:2:1", "early in a")
	r.Addf("S1", "unused-assign", Warning, "a.scope:1:1", "earliest in a")
	r.Addf("S1", "unused-assign", Warning, "noseparator", "no colon at all")
	r.SortByFile()
	var got []string
	for _, d := range r.Diags {
		got = append(got, d.Code+"@"+d.Pos)
	}
	want := []string{
		"S1@a.scope:1:1",
		"S1@a.scope:2:1",
		"S2@a.scope:3:8",
		"P2@b.scope: Sequence/Output",
		"S1@noseparator",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortByFile order = %v, want %v", got, want)
	}
}
