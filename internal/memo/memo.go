// Package memo implements the Cascades memo structure [Graefe 1995]
// used by the SCOPE-style optimizer: groups of logically equivalent
// expressions, per-context winners (best plan per required-property
// set), and the extra per-group state the paper's common-subexpression
// framework maintains — shared marks (Alg. 1), the history of
// requested physical properties (Sec. V), the propagated shared-group
// lists and LCA links (Alg. 3).
package memo

import (
	"fmt"
	"strings"

	"repro/internal/plan"
	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/stats"
)

// GroupID identifies a memo group. It aliases props.GroupID so pins
// (properties enforced at shared groups) can name groups without an
// import cycle.
type GroupID = props.GroupID

// NoGroup is the invalid group id.
const NoGroup GroupID = -1

// LogicalProps are the logical properties shared by every expression
// of a group: output schema and estimated statistics.
type LogicalProps struct {
	Schema relop.Schema
	Rel    stats.Relation
}

// Expr is one group expression: an operator whose children are memo
// groups.
type Expr struct {
	Op       relop.Operator
	Children []GroupID
}

// key canonically identifies the expression within its group for
// deduplication.
func (e *Expr) key() string {
	var b strings.Builder
	b.WriteString(e.Op.Sig())
	for _, c := range e.Children {
		fmt.Fprintf(&b, "#%d", c)
	}
	return b.String()
}

// HistEntry is one element of a shared group's history of requested
// physical properties (paper Sec. V), with the phase-1 win counter
// used by the Sec. VIII-C ranking extension.
type HistEntry struct {
	Req props.Required
	// Wins counts how often this property set was delivered by a
	// winning phase-1 plan of the group; higher means more promising
	// in phase 2.
	Wins int
}

// SharedInfo is Algorithm 3's ShrdGrp node: it records, for the group
// that owns it, one shared group reachable below plus which of its
// consumers have been found below the owner.
type SharedInfo struct {
	// Shared is the shared group this entry tracks.
	Shared GroupID
	// All is the full consumer set (the shared group's parents).
	All []GroupID
	// Found flags the consumers located below the owning group.
	Found map[GroupID]bool
}

// NewSharedInfo builds an entry for shared group s with consumer set
// all and nothing found yet.
func NewSharedInfo(s GroupID, all []GroupID) *SharedInfo {
	return &SharedInfo{Shared: s, All: all, Found: map[GroupID]bool{}}
}

// Clone deep-copies the entry.
func (s *SharedInfo) Clone() *SharedInfo {
	f := make(map[GroupID]bool, len(s.Found))
	for k, v := range s.Found {
		f[k] = v
	}
	return &SharedInfo{Shared: s.Shared, All: s.All, Found: f}
}

// AllFound reports whether every consumer has been located (the
// owning group is then a potential LCA).
func (s *SharedInfo) AllFound() bool {
	for _, c := range s.All {
		if !s.Found[c] {
			return false
		}
	}
	return len(s.All) > 0
}

// Winner is the best plan found for one optimization context of a
// group. Plan is nil when the context is infeasible.
type Winner struct {
	Plan *plan.Node
	Cost float64
}

// Group is one memo group.
type Group struct {
	ID    GroupID
	Exprs []*Expr
	Props LogicalProps

	// Shared marks the group as the root of a shared subexpression
	// (set on Spool groups by Alg. 1).
	Shared bool
	// History is the phase-1 history of requested property sets
	// (only populated on shared groups).
	History []*HistEntry
	// SharedBelow lists the shared groups reachable below this group
	// with consumer bookkeeping (populated by Alg. 3).
	SharedBelow []*SharedInfo
	// LCA is, for a shared group, the least common ancestor of its
	// consumers (NoGroup until Alg. 3 runs).
	LCA GroupID
	// LCAOf lists the shared groups whose LCA is this group.
	LCAOf []GroupID
	// Visited is Algorithm 3's traversal flag.
	Visited bool
	// Dead marks groups orphaned by Redirect (duplicate
	// subexpressions merged away by Alg. 1).
	Dead bool

	winners  map[string]*Winner
	exprKeys map[string]bool
}

// Memo is the optimizer's expression store.
type Memo struct {
	groups  []*Group
	Root    GroupID
	parents map[GroupID][]GroupID // lazily computed, invalidated on mutation
}

// New returns an empty memo.
func New() *Memo {
	return &Memo{Root: NoGroup}
}

// NewGroup creates an empty group with the given logical properties.
func (m *Memo) NewGroup(lp LogicalProps) *Group {
	g := &Group{
		ID:       GroupID(len(m.groups)),
		Props:    lp,
		LCA:      NoGroup,
		winners:  map[string]*Winner{},
		exprKeys: map[string]bool{},
	}
	m.groups = append(m.groups, g)
	m.parents = nil
	return g
}

// Insert creates a new group seeded with op over children.
func (m *Memo) Insert(op relop.Operator, children []GroupID, lp LogicalProps) GroupID {
	g := m.NewGroup(lp)
	m.AddExpr(g.ID, op, children)
	return g.ID
}

// AddExpr adds an expression to an existing group, deduplicating by
// operator signature and children. It reports whether the expression
// was new.
func (m *Memo) AddExpr(gid GroupID, op relop.Operator, children []GroupID) bool {
	g := m.Group(gid)
	e := &Expr{Op: op, Children: append([]GroupID{}, children...)}
	k := e.key()
	if g.exprKeys[k] {
		return false
	}
	g.exprKeys[k] = true
	g.Exprs = append(g.Exprs, e)
	m.parents = nil
	return true
}

// Group returns the group with the given id; it panics on invalid
// ids, which are always programming errors.
func (m *Memo) Group(id GroupID) *Group {
	return m.groups[int(id)]
}

// NumGroups returns the number of groups ever created (including dead
// ones).
func (m *Memo) NumGroups() int { return len(m.groups) }

// Groups iterates over the live groups in id order.
func (m *Memo) Groups() []*Group {
	out := make([]*Group, 0, len(m.groups))
	for _, g := range m.groups {
		if !g.Dead {
			out = append(out, g)
		}
	}
	return out
}

// SharedGroups returns the live groups marked shared, in id order.
func (m *Memo) SharedGroups() []*Group {
	var out []*Group
	for _, g := range m.Groups() {
		if g.Shared {
			out = append(out, g)
		}
	}
	return out
}

// Parents returns the distinct live groups containing an expression
// that references g, in id order. The parent index is computed lazily
// and invalidated by any mutation.
func (m *Memo) Parents(g GroupID) []GroupID {
	if m.parents == nil {
		m.parents = map[GroupID][]GroupID{}
		for _, gr := range m.groups {
			if gr.Dead {
				continue
			}
			seen := map[GroupID]bool{}
			for _, e := range gr.Exprs {
				for _, c := range e.Children {
					if !seen[c] {
						seen[c] = true
						m.parents[c] = append(m.parents[c], gr.ID)
					}
				}
			}
		}
	}
	return m.parents[g]
}

// Redirect rewrites every child reference to `from` so it points to
// `to`, marks `from` dead, and re-deduplicates affected groups. It is
// how Algorithm 1 merges duplicate subexpressions and how Spool
// insertion retargets consumers.
func (m *Memo) Redirect(from, to GroupID, except GroupID) {
	for _, g := range m.groups {
		if g.Dead || g.ID == except {
			continue
		}
		changed := false
		for _, e := range g.Exprs {
			for i, c := range e.Children {
				if c == from {
					e.Children[i] = to
					changed = true
				}
			}
		}
		if changed {
			// Re-deduplicate: two expressions may have become equal.
			keys := map[string]bool{}
			var kept []*Expr
			for _, e := range g.Exprs {
				k := e.key()
				if !keys[k] {
					keys[k] = true
					kept = append(kept, e)
				}
			}
			g.Exprs = kept
			g.exprKeys = keys
		}
	}
	m.parents = nil
}

// Kill marks a group dead (after Redirect moved its consumers away).
func (m *Memo) Kill(g GroupID) {
	m.Group(g).Dead = true
	m.parents = nil
}

// Winner returns the cached winner for the context key, if any.
func (g *Group) Winner(key string) (*Winner, bool) {
	w, ok := g.winners[key]
	return w, ok
}

// SetWinner caches the winner for the context key.
func (g *Group) SetWinner(key string, w *Winner) {
	g.winners[key] = w
}

// SetWinnerIfAbsent caches w for the context key only when the key has
// no winner yet, reporting whether it stored. The parallel phase-2
// merge uses it so that when several round workers independently
// computed the same context, the one earliest in deterministic combo
// order supplies the canonical plan pointer.
func (g *Group) SetWinnerIfAbsent(key string, w *Winner) bool {
	if _, ok := g.winners[key]; ok {
		return false
	}
	g.winners[key] = w
	return true
}

// ClearWinners drops all cached winners (used by tests and by
// re-optimization experiments that change the cost model).
func (g *Group) ClearWinners() {
	g.winners = map[string]*Winner{}
}

// AddHistory appends req to the group's history unless an equal entry
// exists (Alg. 2 lines 1–3). It reports whether the entry was new.
func (g *Group) AddHistory(req props.Required) bool {
	k := req.Key()
	for _, h := range g.History {
		if h.Req.Key() == k {
			return false
		}
	}
	g.History = append(g.History, &HistEntry{Req: req})
	return true
}

// BumpHistoryWins increments the win counter of every history entry
// the delivered properties satisfy (Sec. VIII-C ranking signal).
// Vacuous entries are skipped: every winner satisfies "anything", so
// counting it would drown the informative schemes.
func (g *Group) BumpHistoryWins(d props.Delivered) {
	for _, h := range g.History {
		if h.Req.IsAny() {
			continue
		}
		if d.Satisfies(h.Req) {
			h.Wins++
		}
	}
}

// FindSharedBelow returns this group's SharedInfo for shared group s,
// if present.
func (g *Group) FindSharedBelow(s GroupID) *SharedInfo {
	for _, si := range g.SharedBelow {
		if si.Shared == s {
			return si
		}
	}
	return nil
}

// ResetTraversal clears the Alg. 3 state on all groups so propagation
// can be rerun.
func (m *Memo) ResetTraversal() {
	for _, g := range m.groups {
		g.Visited = false
		g.SharedBelow = nil
		g.LCA = NoGroup
		g.LCAOf = nil
	}
}

// String dumps the memo for debugging: one line per group with its
// expressions.
func (m *Memo) String() string {
	var b strings.Builder
	for _, g := range m.groups {
		if g.Dead {
			continue
		}
		marks := ""
		if g.Shared {
			marks += " [shared]"
		}
		if g.ID == m.Root {
			marks += " [root]"
		}
		fmt.Fprintf(&b, "G%d%s:", g.ID, marks)
		for _, e := range g.Exprs {
			fmt.Fprintf(&b, "  %s", e.Op.Sig())
			if len(e.Children) > 0 {
				b.WriteString("(")
				for i, c := range e.Children {
					if i > 0 {
						b.WriteString(",")
					}
					fmt.Fprintf(&b, "G%d", c)
				}
				b.WriteString(")")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
