package memo

import (
	"strings"
	"testing"

	"repro/internal/props"
	"repro/internal/relop"
	"repro/internal/stats"
)

func lp(rows int64) LogicalProps {
	return LogicalProps{
		Schema: relop.Schema{{Name: "A", Type: relop.TInt}},
		Rel:    stats.Relation{Rows: rows, RowBytes: 8},
	}
}

func gb(keys ...string) *relop.GroupBy {
	return &relop.GroupBy{Keys: keys, Aggs: []relop.Aggregate{{Func: relop.AggSum, Arg: "D", As: "S"}}}
}

func TestInsertAndDedup(t *testing.T) {
	m := New()
	ex := m.Insert(&relop.Extract{Path: "t", FileID: 1}, nil, lp(100))
	g := m.Insert(gb("A"), []GroupID{ex}, lp(10))
	if m.NumGroups() != 2 {
		t.Fatalf("groups = %d", m.NumGroups())
	}
	if !m.AddExpr(g, gb("B"), []GroupID{ex}) {
		t.Error("different expr should insert")
	}
	if m.AddExpr(g, gb("A"), []GroupID{ex}) {
		t.Error("duplicate expr should be rejected")
	}
	if got := len(m.Group(g).Exprs); got != 2 {
		t.Errorf("group exprs = %d", got)
	}
}

func TestParents(t *testing.T) {
	m := New()
	ex := m.Insert(&relop.Extract{Path: "t"}, nil, lp(100))
	g1 := m.Insert(gb("A"), []GroupID{ex}, lp(10))
	g2 := m.Insert(gb("B"), []GroupID{ex}, lp(10))
	ps := m.Parents(ex)
	if len(ps) != 2 || ps[0] != g1 || ps[1] != g2 {
		t.Errorf("parents = %v", ps)
	}
	if got := m.Parents(g1); len(got) != 0 {
		t.Errorf("root-ish group should have no parents: %v", got)
	}
	// Parent index must refresh after mutation.
	g3 := m.Insert(gb("C"), []GroupID{ex}, lp(10))
	if got := m.Parents(ex); len(got) != 3 {
		t.Errorf("parents after insert = %v", got)
	}
	_ = g3
	// Duplicate references from one parent count once.
	m2 := New()
	a := m2.Insert(&relop.Extract{Path: "x"}, nil, lp(1))
	j := m2.Insert(&relop.Join{LeftKeys: []string{"A"}, RightKeys: []string{"A"}}, []GroupID{a, a}, lp(1))
	if got := m2.Parents(a); len(got) != 1 || got[0] != j {
		t.Errorf("self-join parents = %v", got)
	}
}

func TestRedirect(t *testing.T) {
	// Two structurally equal extract groups; redirect consumers of
	// the duplicate onto the original (what Alg. 1 does).
	m := New()
	ex1 := m.Insert(&relop.Extract{Path: "t"}, nil, lp(100))
	ex2 := m.Insert(&relop.Extract{Path: "t"}, nil, lp(100))
	g1 := m.Insert(gb("A"), []GroupID{ex1}, lp(10))
	g2 := m.Insert(gb("A"), []GroupID{ex2}, lp(10))
	m.Redirect(ex2, ex1, NoGroup)
	m.Kill(ex2)
	if got := m.Parents(ex1); len(got) != 2 {
		t.Errorf("parents after redirect = %v", got)
	}
	if !m.Group(ex2).Dead {
		t.Error("redirected group should be dead")
	}
	if len(m.Groups()) != 3 {
		t.Errorf("live groups = %d, want 3", len(m.Groups()))
	}
	_ = g1
	_ = g2
}

func TestRedirectDedupsParentExprs(t *testing.T) {
	// A join of ex1 and ex2 becomes a self-join after redirect; if a
	// self-join expression already existed it must not duplicate.
	m := New()
	ex1 := m.Insert(&relop.Extract{Path: "t"}, nil, lp(100))
	ex2 := m.Insert(&relop.Extract{Path: "t"}, nil, lp(100))
	j := m.Insert(&relop.Join{LeftKeys: []string{"A"}, RightKeys: []string{"A"}}, []GroupID{ex1, ex2}, lp(1))
	m.AddExpr(j, &relop.Join{LeftKeys: []string{"A"}, RightKeys: []string{"A"}}, []GroupID{ex1, ex1})
	if len(m.Group(j).Exprs) != 2 {
		t.Fatalf("precondition: 2 exprs")
	}
	m.Redirect(ex2, ex1, NoGroup)
	if len(m.Group(j).Exprs) != 1 {
		t.Errorf("exprs after redirect = %d, want 1 (deduped)", len(m.Group(j).Exprs))
	}
}

func TestRedirectExcept(t *testing.T) {
	// Spool insertion: all consumers move to the spool group except
	// the spool itself, which keeps pointing at the original.
	m := New()
	ex := m.Insert(&relop.Extract{Path: "t"}, nil, lp(100))
	g1 := m.Insert(gb("A"), []GroupID{ex}, lp(10))
	g2 := m.Insert(gb("B"), []GroupID{ex}, lp(10))
	spool := m.Insert(&relop.Spool{}, []GroupID{ex}, m.Group(ex).Props)
	m.Redirect(ex, spool, spool)
	if got := m.Parents(ex); len(got) != 1 || got[0] != spool {
		t.Errorf("original's parents = %v, want only spool", got)
	}
	if got := m.Parents(spool); len(got) != 2 {
		t.Errorf("spool parents = %v", got)
	}
	_ = g1
	_ = g2
}

func TestWinners(t *testing.T) {
	m := New()
	g := m.Group(m.Insert(&relop.Extract{Path: "t"}, nil, lp(1)))
	if _, ok := g.Winner("any"); ok {
		t.Error("no winner yet")
	}
	g.SetWinner("any", &Winner{Cost: 5})
	w, ok := g.Winner("any")
	if !ok || w.Cost != 5 {
		t.Errorf("winner = %+v, %v", w, ok)
	}
	g.ClearWinners()
	if _, ok := g.Winner("any"); ok {
		t.Error("winners should be cleared")
	}
}

func TestHistory(t *testing.T) {
	m := New()
	g := m.Group(m.Insert(&relop.Extract{Path: "t"}, nil, lp(1)))
	r1 := props.RequireHash(props.NewColSet("A", "B"))
	r2 := props.RequireHash(props.NewColSet("B"))
	if !g.AddHistory(r1) || !g.AddHistory(r2) {
		t.Error("new entries should insert")
	}
	if g.AddHistory(r1) {
		t.Error("duplicate entry should be rejected")
	}
	if len(g.History) != 2 {
		t.Fatalf("history = %d", len(g.History))
	}
	// Delivered hash{B} satisfies both entries.
	g.BumpHistoryWins(props.Delivered{Part: props.HashPartitioning(props.NewColSet("B"))})
	if g.History[0].Wins != 1 || g.History[1].Wins != 1 {
		t.Errorf("wins = %d, %d", g.History[0].Wins, g.History[1].Wins)
	}
	// Delivered hash{A} satisfies only the first.
	g.BumpHistoryWins(props.Delivered{Part: props.HashPartitioning(props.NewColSet("A"))})
	if g.History[0].Wins != 2 || g.History[1].Wins != 1 {
		t.Errorf("wins = %d, %d", g.History[0].Wins, g.History[1].Wins)
	}
}

func TestSharedInfo(t *testing.T) {
	si := NewSharedInfo(3, []GroupID{4, 5})
	if si.AllFound() {
		t.Error("nothing found yet")
	}
	si.Found[4] = true
	if si.AllFound() {
		t.Error("partial")
	}
	si.Found[5] = true
	if !si.AllFound() {
		t.Error("all found")
	}
	c := si.Clone()
	c.Found[4] = false
	if !si.Found[4] {
		t.Error("Clone shares Found map")
	}
	empty := NewSharedInfo(3, nil)
	if empty.AllFound() {
		t.Error("empty consumer set must not count as found")
	}
}

func TestFindSharedBelowAndReset(t *testing.T) {
	m := New()
	g := m.Group(m.Insert(&relop.Extract{Path: "t"}, nil, lp(1)))
	g.SharedBelow = append(g.SharedBelow, NewSharedInfo(7, []GroupID{8}))
	if got := g.FindSharedBelow(7); got == nil || got.Shared != 7 {
		t.Errorf("FindSharedBelow = %v", got)
	}
	if g.FindSharedBelow(9) != nil {
		t.Error("missing shared should be nil")
	}
	g.Visited = true
	g.LCA = 3
	g.LCAOf = []GroupID{7}
	m.ResetTraversal()
	if g.Visited || g.LCA != NoGroup || g.LCAOf != nil || g.SharedBelow != nil {
		t.Error("ResetTraversal incomplete")
	}
}

func TestSharedGroupsAndString(t *testing.T) {
	m := New()
	ex := m.Insert(&relop.Extract{Path: "t"}, nil, lp(1))
	sp := m.Insert(&relop.Spool{}, []GroupID{ex}, lp(1))
	m.Group(sp).Shared = true
	m.Root = sp
	sg := m.SharedGroups()
	if len(sg) != 1 || sg[0].ID != sp {
		t.Errorf("shared groups = %v", sg)
	}
	s := m.String()
	if !strings.Contains(s, "[shared]") || !strings.Contains(s, "[root]") {
		t.Errorf("String missing marks:\n%s", s)
	}
	if !strings.Contains(s, "Spool(G0)") {
		t.Errorf("String missing child refs:\n%s", s)
	}
}

// TestMemoScales exercises the memo's core operations on a
// 10k-group chain: construction, parent indexing, and redirects must
// all stay effectively linear.
func TestMemoScales(t *testing.T) {
	m := New()
	prev := m.Insert(&relop.Extract{Path: "t", FileID: 1}, nil, lp(1000))
	for i := 0; i < 10_000; i++ {
		prev = m.Insert(gb("A"), []GroupID{prev}, lp(100))
	}
	m.Root = prev
	if m.NumGroups() != 10_001 {
		t.Fatalf("groups = %d", m.NumGroups())
	}
	// Parent index over the whole chain.
	count := 0
	for _, g := range m.Groups() {
		count += len(m.Parents(g.ID))
	}
	if count != 10_000 {
		t.Errorf("parent edges = %d", count)
	}
	// A redirect in the middle stays cheap and consistent.
	mid := GroupID(5000)
	sp := m.Insert(&relop.Spool{}, []GroupID{mid}, lp(100))
	m.Redirect(mid, sp, sp)
	if got := m.Parents(mid); len(got) != 1 || got[0] != sp {
		t.Errorf("parents after redirect = %v", got)
	}
}

func TestSetWinnerIfAbsent(t *testing.T) {
	m := New()
	g := m.Group(m.Insert(&relop.Extract{Path: "t"}, nil, lp(1)))
	first := &Winner{Cost: 5}
	if !g.SetWinnerIfAbsent("any", first) {
		t.Error("first store must report true")
	}
	if g.SetWinnerIfAbsent("any", &Winner{Cost: 3}) {
		t.Error("second store must report false")
	}
	if w, ok := g.Winner("any"); !ok || w != first {
		t.Errorf("winner = %+v, want the first stored pointer", w)
	}
	if !g.SetWinnerIfAbsent("h=B", &Winner{Cost: 7}) {
		t.Error("distinct key must store")
	}
}
