#!/bin/sh
# check.sh — the repository's tier-1 gate. Every change must pass this
# before merging; CI and the bench/fuzz harnesses assume it is green.
#
#   ./check.sh          # full gate
#
# Steps: formatting, static analysis (go vet + the repo's own plan/
# script analyzers via the test suite), build, tests, and the race
# detector on the packages with concurrency (optimizer rounds, core
# propagation, cluster simulator).
set -e

cd "$(dirname "$0")"

fail() {
	echo "check.sh: $1" >&2
	exit 1
}

echo "== gofmt =="
# Fixture packages under internal/vet/testdata deliberately contain
# unidiomatic code for the analyzers to flag; everything else must be
# formatted (cmd/scopevet and internal/vet included).
unformatted=$(find . -name '*.go' -not -path './internal/vet/testdata/*' | xargs gofmt -l)
if [ -n "$unformatted" ]; then
	echo "$unformatted"
	fail "gofmt: files above need formatting"
fi

echo "== go vet =="
go vet ./... || fail "go vet failed"

# scopevet: the repo's own Go-source analyzers (determinism, metered
# IO, guarded-by convention, diagnostic-code catalogs). The tree must
# stay finding-free; suppressions live in source with reasons.
echo "== scopevet =="
go run ./cmd/scopevet ./... || fail "scopevet found violations"

echo "== go build =="
go build ./... || fail "build failed"

echo "== go test =="
go test ./... || fail "tests failed"

echo "== go test -race (opt, core, memo, exec, share, mqo) =="
go test -race ./internal/opt/ ./internal/core/ ./internal/memo/ ./internal/exec/ ./internal/share/ ./internal/mqo/ || fail "race tests failed"

# The parallel-executor suites are the load-bearing coverage for the
# worker pool, single-flight spools, and concurrent Cluster.Run — run
# them by name so a renamed or skipped test cannot silently drop the
# race coverage.
echo "== go test -race (parallel exec suites) =="
go test -race -count=1 -run 'Parallel|Concurrent|SingleFlight|BroadcastSpool' ./internal/exec/ ||
	fail "parallel exec race tests failed"

# Same discipline for the phase-2 round engine: the equivalence sweep
# and budget-expiry tests are the load-bearing coverage for the
# parallel round workers, so run them by name under the race detector.
echo "== go test -race (parallel phase-2 suites) =="
go test -race -count=1 -run 'ParallelRound|Equivalence|BudgetExpiry' ./internal/opt/ ||
	fail "parallel phase-2 race tests failed"

# The observability layer is lock-light shared state by design
# (atomic metrics registry, one-mutex tracer, one-mutex event log) —
# always race-test it, plus the registry merge invariants that back
# batch reporting.
echo "== go test -race (obs + eventlog + registry merge suites) =="
go test -race -count=1 ./internal/obs/ ./internal/obs/eventlog/ || fail "obs race tests failed"
go test -race -count=1 -run 'RegistryMerge|SessionPublish' ./internal/exec/ ./internal/share/ ||
	fail "registry merge race tests failed"

# The shared session and the multi-tenant service are the load-bearing
# concurrency surfaces for cross-query sharing: run the concurrent-Run
# and concurrent-clients suites by name under the race detector so a
# rename cannot silently drop the coverage.
echo "== go test -race (share session + serve concurrency suites) =="
go test -race -count=1 -run 'SessionConcurrent|SessionMissCount|CachePin' ./internal/share/ ||
	fail "share concurrency race tests failed"
go test -race -count=1 -run 'ServeConcurrent|ServeCrossTenant|FoldGroups|ServeBackpressure|ServeShutdown' ./internal/serve/ ||
	fail "serve concurrency race tests failed"

# The workload-level MQO selector seeds its benefit heap concurrently
# and must stay deterministic at any worker width; the serve batch mode
# plans whole windows off the dispatch lock. Run both by name under the
# race detector so a rename cannot silently drop the coverage.
echo "== go test -race (mqo selection + batch suites) =="
go test -race -count=1 -run 'SelectionDeterministicAcrossWorkers|SelectGreedyMatchesOracle|EnactBitIdentical' ./internal/mqo/ ||
	fail "mqo selection race tests failed"
go test -race -count=1 -run 'ServeMQOBatch' ./internal/serve/ ||
	fail "serve MQO batch race test failed"

# The query event log is written from every request goroutine and read
# by the flight recorder, the sink, and the introspection endpoints:
# run the eventlog suites by name under the race detector (ring bound,
# well-formed JSON under concurrency, counter additivity, byte-equal
# canonical streams across worker widths).
echo "== go test -race (serve event log suites) =="
go test -race -count=1 -run 'EventLog' ./internal/serve/ ||
	fail "serve event log race tests failed"

# The vectorized engine's load-bearing coverage: kernel-vs-scalar
# differentials, spill accounting, and the row-vs-vector engine
# differentials (including forced-spill runs) — by name, under the
# race detector, so a rename cannot silently drop them.
echo "== go test -race (vector engine + spill suites) =="
go test -race -count=1 -run 'Vector|Spill|EngineDiff' ./internal/exec/ ||
	fail "vector/spill race tests failed"

# Vectorized-executor benchmark artifact: a reduced-scale generation
# pass must produce a BENCH_vec.json accepted by its own schema
# validator, with every kernel bit-identical between engines and
# every budgeted spill cell bounded by its budget.
echo "== vec bench smoke (benchrepro -fig vec) =="
tmpdirvec=$(mktemp -d)
out=$(go run ./cmd/benchrepro -fig vec -vecrows 20000 -veciters 1 -vecout "$tmpdirvec/BENCH_vec.json") ||
	{ rm -rf "$tmpdirvec"; fail "vec bench smoke run failed"; }
rm -rf "$tmpdirvec"
echo "$out" | tail -1
echo "$out" | grep -q 'schema ok' || fail "vec bench smoke produced no schema-ok line"

# Optimizer benchmark artifact: one generation pass must emit a
# BENCH_opt.json that its own schema validator accepts.
echo "== opt bench smoke (benchrepro -fig opt) =="
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
out=$(go run ./cmd/benchrepro -fig opt -iters 1 -out "$tmpdir/BENCH_opt.json") ||
	fail "opt bench smoke run failed"
echo "$out" | tail -1
echo "$out" | grep -q 'schema ok' || fail "opt bench smoke produced no schema-ok line"

# Trace smoke: a traced EXPLAIN ANALYZE run must emit well-formed,
# non-empty Chrome trace_event JSON (scopetrace validates structure
# and span presence) and annotate plan nodes with actual row counts.
echo "== trace smoke (scoperun -trace -analyze + scopetrace) =="
out=$(go run ./cmd/scoperun -script s1 -machines 5 -workers 4 -analyze -trace "$tmpdir/trace.json") ||
	fail "trace smoke run failed"
echo "$out" | grep -q 'actual=' || fail "analyze output carries no actual row counts"
out=$(go run ./cmd/scopetrace "$tmpdir/trace.json") || fail "trace validation failed"
echo "$out"
echo "$out" | grep -q 'trace ok' || fail "trace file failed validation"

# Session batch mode over the example scripts: later scripts must hit
# the cross-query cache, and every script must match its cache-disabled
# baseline (scoperun exits nonzero on a mismatch).
echo "== session smoke (scoperun -session examples/session) =="
out=$(go run ./cmd/scoperun -session examples/session -machines 8 -workers 4) ||
	fail "session smoke run failed"
echo "$out"
echo "$out" | grep -q 'hits=1' || fail "session smoke run produced no cache hits"

# Workload-level MQO over the same example scripts: the merged-DAG
# selection must enact bit-identically to independent cold runs
# (scopemqo exits nonzero on a mismatch) and its ablation artifact
# must pass its own schema validator.
echo "== mqo smoke (scopemqo -session examples/session) =="
out=$(go run ./cmd/scopemqo -session examples/session -machines 8 -workers 4) ||
	fail "mqo smoke run failed"
echo "$out"
echo "$out" | grep -q 'mqo ok' || fail "mqo smoke produced no ok line"
echo "== mqo bench smoke (benchrepro -fig mqo) =="
out=$(go run ./cmd/benchrepro -fig mqo -mqoout "$tmpdir/BENCH_mqo.json") ||
	fail "mqo bench smoke run failed"
echo "$out" | tail -1
echo "$out" | grep -q 'schema ok' || fail "mqo bench smoke produced no schema-ok line"

# Service selftest: concurrent multi-tenant clients over one shared
# session must produce results bit-identical to cold sequential runs,
# with warm rounds served from the cross-client cache (scoped exits
# nonzero on any mismatch).
echo "== scoped smoke (scoped -selftest) =="
out=$(go run ./cmd/scoped -selftest -machines 8 -workers 4) ||
	fail "scoped selftest failed"
echo "$out"
echo "$out" | grep -q 'selftest ok' || fail "scoped selftest produced no ok line"

# Event-log replay: scopestat must recompute the committed 20-event
# fixture's sharing statistics exactly (the offline half of the
# additivity invariant the serve tests pin live).
echo "== scopestat replay smoke (scopestat -replay) =="
out=$(go run ./cmd/scopestat -replay cmd/scopestat/testdata/events.jsonl) ||
	fail "scopestat replay failed"
echo "$out" | head -1
echo "$out" | grep -q '^events=20 errors=0 ' || fail "scopestat replay totals diverge from the fixture"

echo "check.sh: all green"
