// Package repro_test holds the top-level benchmark harness: one
// benchmark per table/figure of the paper's evaluation (Sec. IX).
// Estimated plan costs and savings are attached to each benchmark as
// custom metrics, so `go test -bench=. -benchmem` regenerates the
// numbers behind Fig. 7, Fig. 8, and the Sec. VIII round-count
// results alongside the optimizer's own running time.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/obs"
)

// BenchmarkFig7 regenerates the paper's Fig. 7: for every evaluation
// script, the estimated cost under conventional optimization and
// under the CSE framework. Metrics: est_cost (plan cost in calibrated
// units), saving_pct for the CSE variants; ns/op is optimization
// time.
func BenchmarkFig7(b *testing.B) {
	cfg := bench.DefaultConfig()
	for _, w := range bench.Fig7Workloads() {
		w := w
		var convCost float64
		b.Run(w.Name+"_Conventional", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.RunOne(w, false, cfg)
				if err != nil {
					b.Fatal(err)
				}
				convCost = res.Cost
			}
			b.ReportMetric(convCost, "est_cost")
		})
		b.Run(w.Name+"_ExploitCSE", func(b *testing.B) {
			var cost float64
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := bench.RunOne(w, true, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Cost
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(cost, "est_cost")
			if convCost > 0 {
				b.ReportMetric((1-cost/convCost)*100, "saving_pct")
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkFig8 regenerates the Fig. 8 plan pair for S1 (plan
// extraction end to end); the est_cost metrics mirror the figure's
// two bars.
func BenchmarkFig8(b *testing.B) {
	cfg := bench.DefaultConfig()
	var conv, cse string
	for i := 0; i < b.N; i++ {
		var err error
		conv, cse, err = bench.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(conv)), "conv_plan_bytes")
	b.ReportMetric(float64(len(cse)), "cse_plan_bytes")
}

// BenchmarkRoundsFig5 regenerates the Sec. VIII-A round reduction on
// the Fig. 5 script: rounds evaluated with the independent-shared-
// groups extension versus the full cartesian product.
func BenchmarkRoundsFig5(b *testing.B) {
	cfg := bench.DefaultConfig()
	for _, ablate := range []struct {
		name    string
		disable bool
	}{{"Independent", false}, {"Cartesian", true}} {
		ablate := ablate
		b.Run(ablate.name, func(b *testing.B) {
			c := cfg
			c.DisableIndependence = ablate.disable
			c.MaxRoundsPerLCA = 1 << 20
			w := bench.Small("Fig5", bench.ScriptFig5)
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := bench.RunOne(w, true, c)
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkRankingBudget regenerates the Sec. VIII-B/C effect: plan
// cost reached within a single re-optimization round with ranked
// versus recording-order round generation.
func BenchmarkRankingBudget(b *testing.B) {
	cfg := bench.DefaultConfig()
	for _, v := range []struct {
		name    string
		disable bool
	}{{"Ranked", false}, {"Unranked", true}} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			c := cfg
			c.DisableRanking = v.disable
			c.MaxRoundsPerLCA = 1
			c.UsePaperBudgets = false
			w := bench.Small("Ranking", bench.ScriptRanking)
			var cost float64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunOne(w, true, c)
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Cost
			}
			b.ReportMetric(cost, "est_cost_at_1_round")
		})
	}
}

// BenchmarkBaselines regenerates the related-work comparison: for
// each micro-script, estimated cost under no sharing, local-optimal
// sharing (the pre-paper techniques), and the paper's cost-based
// framework.
func BenchmarkBaselines(b *testing.B) {
	cfg := bench.DefaultConfig()
	var rows []bench.BaselineRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Baselines(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Conv, r.Script+"_conv")
		b.ReportMetric(r.LocalCSE, r.Script+"_local")
		b.ReportMetric(r.PaperCSE, r.Script+"_costbased")
	}
}

// BenchmarkExecution runs the optimized S1 plans on the simulated
// cluster, reporting metered work — the executable counterpart of
// Fig. 7's estimated comparison.
func BenchmarkExecution(b *testing.B) {
	cfg := bench.DefaultConfig()
	w := datagen.SmallWorkloadCols("S1", bench.ScriptS1, 20_000, 100_000, 11,
		datagen.MicroScriptColumns())
	for _, v := range []struct {
		name string
		cse  bool
	}{{"Conventional", false}, {"ExploitCSE", true}} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			res, err := bench.RunOne(w, v.cse, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var m exec.Metrics
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cl, err := exec.NewCluster(5, w.FS)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cl.Run(res.Plan); err != nil {
					b.Fatal(err)
				}
				m = cl.Metrics()
			}
			b.ReportMetric(float64(m.RowsProcessed), "rows_processed")
			b.ReportMetric(float64(m.NetBytes), "net_bytes")
			b.ReportMetric(float64(m.Exchanges), "exchanges")
		})
	}
}

// BenchmarkIdentifyCSE measures Step 1 (fingerprints + spool
// insertion, Alg. 1) on the LS2-sized memo.
func BenchmarkIdentifyCSE(b *testing.B) {
	w := datagen.LargeScript2()
	for i := 0; i < b.N; i++ {
		m, err := logical.BuildSource(w.Script, w.Cat)
		if err != nil {
			b.Fatal(err)
		}
		core.IdentifyCommonSubexpressions(m)
	}
}

// BenchmarkPropagateLCA measures Step 3 (Alg. 3 propagation plus LCA
// identification) on the LS2-sized memo.
func BenchmarkPropagateLCA(b *testing.B) {
	w := datagen.LargeScript2()
	m, err := logical.BuildSource(w.Script, w.Cat)
	if err != nil {
		b.Fatal(err)
	}
	core.IdentifyCommonSubexpressions(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PropagateSharedGroups(m)
	}
}

// BenchmarkIndependenceScaling sweeps the number of independent
// shared pipelines under one LCA: with the Sec. VIII-A extension the
// phase-2 rounds grow linearly in the number of shared groups; the
// cartesian product grows exponentially (capped here by
// MaxRoundsPerLCA, which is the point — the naive strategy blows the
// budget immediately).
func BenchmarkIndependenceScaling(b *testing.B) {
	for _, pipelines := range []int{2, 4, 8} {
		shape := datagen.LSShape{
			Name:          "scale",
			TargetOps:     0, // no filler
			SharedFanouts: make([]int, pipelines),
			PhysRows:      500,
			StatScale:     100_000,
			Seed:          int64(pipelines),
		}
		for i := range shape.SharedFanouts {
			shape.SharedFanouts[i] = 2
		}
		w := datagen.LargeScript(shape)
		for _, v := range []struct {
			name    string
			disable bool
		}{{"Independent", false}, {"Cartesian", true}} {
			v := v
			b.Run(fmt.Sprintf("%s/pipelines=%d", v.name, pipelines), func(b *testing.B) {
				cfg := bench.DefaultConfig()
				cfg.DisableIndependence = v.disable
				cfg.MaxRoundsPerLCA = 4096
				cfg.UsePaperBudgets = false
				var rounds int
				for i := 0; i < b.N; i++ {
					res, err := bench.RunOne(w, true, cfg)
					if err != nil {
						b.Fatal(err)
					}
					rounds = res.Stats.Rounds
				}
				b.ReportMetric(float64(rounds), "rounds")
			})
		}
	}
}

// BenchmarkOptRoundEngine measures the phase-2 round engine on S2
// (where branch-and-bound pruning fires) under each engine variant:
// the full engine, pruning ablated, cross-round winner reuse ablated,
// and the engine forced serial. Every variant reaches the same plan;
// the metrics show the search effort each optimization removes.
func BenchmarkOptRoundEngine(b *testing.B) {
	w := bench.Small("S2", bench.ScriptS2)
	for _, v := range []struct {
		name   string
		mutate func(*bench.Config)
	}{
		{"Full", nil},
		{"NoPrune", func(c *bench.Config) { c.DisableRoundPruning = true }},
		{"NoReuse", func(c *bench.Config) { c.DisableWinnerReuse = true; c.Lint = false }},
		{"Serial", func(c *bench.Config) { c.OptWorkers = 1 }},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			cfg := bench.DefaultConfig()
			cfg.UsePaperBudgets = false
			if v.mutate != nil {
				v.mutate(&cfg)
			}
			var st struct{ rounds, pruned, p2 int }
			for i := 0; i < b.N; i++ {
				res, err := bench.RunOne(w, true, cfg)
				if err != nil {
					b.Fatal(err)
				}
				st.rounds = res.Stats.Rounds
				st.pruned = res.Stats.RoundsPruned
				st.p2 = res.Stats.Phase2Tasks
			}
			b.ReportMetric(float64(st.rounds), "rounds")
			b.ReportMetric(float64(st.pruned), "rounds_pruned")
			b.ReportMetric(float64(st.p2), "phase2_tasks")
		})
	}
}

// BenchmarkTracerOverhead measures the observability tax on the full
// optimize-and-execute path of the S1–S4 micro-scripts. Off is the
// default nil-tracer configuration — every span site reduces to one
// pointer check, so Off must stay within 2% of a build without the
// instrumentation (the acceptance bar for the tracing layer). On
// records every optimizer and executor span, bounding what -trace
// costs when it is actually requested.
func BenchmarkTracerOverhead(b *testing.B) {
	scripts := []struct{ name, src string }{
		{"S1", bench.ScriptS1}, {"S2", bench.ScriptS2},
		{"S3", bench.ScriptS3}, {"S4", bench.ScriptS4},
	}
	for _, v := range []struct {
		name   string
		traced bool
	}{{"Off", false}, {"On", true}} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var ws []*datagen.Workload
			for _, s := range scripts {
				ws = append(ws, bench.Small(s.name, s.src))
			}
			cfg := bench.DefaultConfig()
			cfg.UsePaperBudgets = false
			var spans int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, w := range ws {
					c := cfg
					if v.traced {
						c.Tracer = obs.NewTracer()
					}
					res, err := bench.RunOne(w, true, c)
					if err != nil {
						b.Fatal(err)
					}
					cl, err := exec.NewCluster(5, w.FS)
					if err != nil {
						b.Fatal(err)
					}
					cl.Trace = c.Tracer
					if _, err := cl.Run(res.Plan); err != nil {
						b.Fatal(err)
					}
					if v.traced {
						spans += c.Tracer.Len()
					}
				}
			}
			if v.traced {
				b.ReportMetric(float64(spans)/float64(b.N), "spans/op")
			}
		})
	}
}
