package scope

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/relop"
)

func optimizeS1Lint(t *testing.T, options ...Option) *Plan {
	t.Helper()
	q, err := testDB(t).Compile(s1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Optimize(options...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanLintClean(t *testing.T) {
	for _, opts := range [][]Option{
		nil,
		{WithCSE(false)},
		{WithSCOPEProfile()},
		{WithLocalSharingOnly()},
	} {
		p := optimizeS1Lint(t, opts...)
		if ds := p.Lint(); len(ds) != 0 {
			t.Errorf("optimizer plan (options %d) has lint findings: %v", len(opts), ds)
		}
	}
}

// TestPlanLintFlagsCorruptedPlan corrupts the optimized plan so one
// consumer path reaches the shared group under a different pinned
// context, and checks the public Lint API surfaces the P2 finding in
// compiler format.
func TestPlanLintFlagsCorruptedPlan(t *testing.T) {
	p := optimizeS1Lint(t)
	spools := plan.FindAll(p.res.Plan, relop.KindPhysSpool)
	if len(spools) != 1 {
		t.Fatalf("S1 plan has %d spools, want 1", len(spools))
	}
	sp := spools[0]
	rogue := *sp
	rogue.CtxKey = sp.CtxKey + "|rogue"
	replaced := false
	for _, n := range plan.Operators(p.res.Plan) {
		for i, c := range n.Children {
			if c == sp && !replaced {
				n.Children[i] = &rogue
				replaced = true
			}
		}
	}
	if !replaced {
		t.Fatal("spool has no consumer to corrupt")
	}
	ds := p.Lint()
	var hit *Diagnostic
	for i := range ds {
		if ds[i].Code == "P2" {
			hit = &ds[i]
		}
	}
	if hit == nil {
		t.Fatalf("conflicting pins not surfaced through Plan.Lint: %v", ds)
	}
	if hit.Severity != "error" || hit.Analyzer != "pin-consistency" {
		t.Errorf("P2 finding = %+v", *hit)
	}
	s := hit.String()
	if !strings.Contains(s, ": error: ") || !strings.HasSuffix(s, "[P2]") {
		t.Errorf("diagnostic format = %q, want compiler style with trailing [P2]", s)
	}
}

// TestPlanLintDisable checks reporting-level filtering through the
// public API: the corrupted plan's P2 finding disappears when P2 is
// disabled, and disabling an unrelated code leaves it in place.
func TestPlanLintDisable(t *testing.T) {
	p := optimizeS1Lint(t)
	spools := plan.FindAll(p.res.Plan, relop.KindPhysSpool)
	if len(spools) != 1 {
		t.Fatalf("S1 plan has %d spools, want 1", len(spools))
	}
	sp := spools[0]
	rogue := *sp
	rogue.CtxKey = sp.CtxKey + "|rogue"
	replaced := false
	for _, n := range plan.Operators(p.res.Plan) {
		for i, c := range n.Children {
			if c == sp && !replaced {
				n.Children[i] = &rogue
				replaced = true
			}
		}
	}
	if !replaced {
		t.Fatal("spool has no consumer to corrupt")
	}
	baseline := p.Lint()
	if len(baseline) == 0 {
		t.Fatal("corrupted plan should have findings")
	}
	for _, d := range p.Lint("P2") {
		if d.Code == "P2" {
			t.Errorf("Lint(\"P2\") still reports a P2 finding: %+v", d)
		}
	}
	found := false
	for _, d := range p.Lint("S1") {
		if d.Code == "P2" {
			found = true
		}
	}
	if !found {
		t.Error("disabling an unrelated code dropped the P2 finding")
	}
}

// TestPlanLintDisableUnknownCode pins that a typo'd code surfaces as a
// synthetic S4 error rather than being silently accepted.
func TestPlanLintDisableUnknownCode(t *testing.T) {
	p := optimizeS1Lint(t)
	ds := p.Lint("Q9")
	found := false
	for _, d := range ds {
		if d.Code == "S4" && d.Severity == "error" && strings.Contains(d.Message, `"Q9"`) {
			found = true
		}
	}
	if !found {
		t.Errorf(`Lint("Q9") should yield a synthetic S4 error naming the code, got %v`, ds)
	}
}

// TestPlanLintDisableValidationCode checks V codes are accepted by the
// disable list (they are registered in internal/opt, not internal/lint).
func TestPlanLintDisableValidationCode(t *testing.T) {
	p := optimizeS1Lint(t)
	if ds := p.Lint("V3"); len(ds) != 0 {
		t.Errorf(`Lint("V3") on a clean plan = %v, want no findings`, ds)
	}
}

func TestDiagnosticStringEmptyPos(t *testing.T) {
	d := Diagnostic{Code: "P3", Severity: "error", Message: "m"}
	if got := d.String(); got != "<plan>: error: m [P3]" {
		t.Errorf("String() = %q", got)
	}
}

// exampleScripts collects every `const script` literal under
// examples/, plus the largescript generator's shape, so the
// acceptance check below covers all shipped example workloads.
func exampleScripts(t *testing.T) map[string]string {
	t.Helper()
	scripts := map[string]string{}
	mains, err := filepath.Glob("../examples/*/main.go")
	if err != nil || len(mains) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	for _, path := range mains {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Base(filepath.Dir(path))
		const marker = "const script = `"
		i := strings.Index(string(src), marker)
		if i < 0 {
			continue // largescript generates its script programmatically
		}
		rest := string(src)[i+len(marker):]
		j := strings.Index(rest, "`")
		if j < 0 {
			t.Fatalf("%s: unterminated script literal", path)
		}
		scripts[name] = rest[:j]
	}
	if len(scripts) < 4 {
		t.Fatalf("expected at least 4 extracted example scripts, got %d", len(scripts))
	}
	// The largescript example's generated shape: disjoint shared
	// pipelines, three consumers each.
	var sb strings.Builder
	groupings := []string{"A,B", "B,C", "A"}
	for i := 0; i < 2; i++ {
		fmt.Fprintf(&sb, "E%d = EXTRACT A,B,C,D FROM \"logs/part%d.log\" USING LogExtractor;\n", i, i)
		fmt.Fprintf(&sb, "S%d = SELECT A,B,C,Sum(D) as S FROM E%d GROUP BY A,B,C;\n", i, i)
		for j, g := range groupings {
			fmt.Fprintf(&sb, "C%d_%d = SELECT %s,Sum(S) as T FROM S%d GROUP BY %s;\n", i, j, g, i, g)
			fmt.Fprintf(&sb, "OUTPUT C%d_%d TO \"out/p%d_%d.out\";\n", i, j, i, j)
		}
	}
	scripts["largescript"] = sb.String()
	return scripts
}

// TestExampleScriptsLintClean is the repo-wide acceptance gate: every
// example script optimized with CSE on (and under the SCOPE profile)
// must yield zero static-analysis findings of any severity.
func TestExampleScriptsLintClean(t *testing.T) {
	for name, script := range exampleScripts(t) {
		db := New()
		q, err := db.Compile(script)
		if err != nil {
			t.Errorf("%s: does not compile: %v", name, err)
			continue
		}
		for _, profile := range []struct {
			name string
			opts []Option
		}{
			{"default", nil},
			{"scope", []Option{WithSCOPEProfile()}},
			{"nocse", []Option{WithCSE(false)}},
		} {
			p, err := q.Optimize(profile.opts...)
			if err != nil {
				t.Errorf("%s/%s: optimize: %v", name, profile.name, err)
				continue
			}
			if ds := p.Lint(); len(ds) != 0 {
				t.Errorf("%s/%s: plan has lint findings:\n%v\nplan:\n%s",
					name, profile.name, ds, p.Explain())
			}
		}
	}
}
