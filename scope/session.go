package scope

import (
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/relop"
	"repro/internal/share"
)

// Session runs a sequence of scripts against this DB's tables on one
// simulated cluster, sharing materialized common subexpressions
// across the scripts: each run may serve equivalent subexpressions
// from a fingerprint-keyed result cache populated by earlier runs,
// and materializations worth keeping (cost-based admission) are
// persisted for later runs. Loading a table or re-registering its
// statistics invalidates dependent cache entries.
type Session struct {
	db *DB
	s  *share.Session
}

// SessionOption configures NewSession.
type SessionOption func(*share.Config)

// WithCacheBytes bounds the session result cache's artifact payload
// (default 1 GiB); least-recently-used entries are evicted past it.
func WithCacheBytes(n int64) SessionOption {
	return func(c *share.Config) { c.CacheBytes = n }
}

// WithExpectedReuse sets the admission formula's estimate of how many
// future scripts will reuse an admitted artifact (default 1). Higher
// values admit more aggressively.
func WithExpectedReuse(r float64) SessionOption {
	return func(c *share.Config) { c.ExpectedReuse = r }
}

// WithSessionWorkers bounds the execution worker pool per run
// (default: one worker per CPU). Results are identical at any width.
func WithSessionWorkers(n int) SessionOption {
	return func(c *share.Config) { c.Workers = n }
}

// NewSession starts a session executing on machines partitions.
func (db *DB) NewSession(machines int, options ...SessionOption) (*Session, error) {
	cfg := share.Config{Catalog: db.cat, FS: db.fs, Machines: machines}
	for _, o := range options {
		o(&cfg)
	}
	s, err := share.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	return &Session{db: db, s: s}, nil
}

// SessionRun reports one script execution inside a session.
type SessionRun struct {
	// Outputs holds every OUTPUT file the script produced, by path.
	Outputs map[string]*Result
	// Stats meters the execution (cache traffic excluded from disk
	// bytes — see CacheBytesRead).
	Stats ExecStats
	// EstimatedCost is the optimizer's DAG-aware estimate.
	EstimatedCost float64
	// CacheHits counts subexpressions served from the session cache;
	// CacheMisses counts shared subexpressions materialized this run
	// that the cache did not hold.
	CacheHits   int
	CacheMisses int
	// Admitted and AdmittedBytes describe artifacts persisted into
	// the cache by this run.
	Admitted      int
	AdmittedBytes int64
	// CacheBytesRead and CacheBytesWritten meter cache traffic,
	// separate from Stats.DiskBytesRead/Written so cold-vs-warm
	// comparisons isolate what sharing saved.
	CacheBytesRead    int64
	CacheBytesWritten int64
}

// Run compiles, optimizes, and executes one script inside the
// session. The optimizer sees the session cache; results are
// identical to a cache-disabled run at any worker count.
func (s *Session) Run(src string) (*SessionRun, error) {
	rep, err := s.s.Run(src)
	if err != nil {
		return nil, err
	}
	out := &SessionRun{
		Outputs:           make(map[string]*Result, len(rep.Outputs)),
		EstimatedCost:     rep.Cost,
		CacheHits:         rep.CacheHits,
		CacheMisses:       rep.CacheMisses,
		Admitted:          rep.Admitted,
		AdmittedBytes:     rep.AdmittedBytes,
		CacheBytesRead:    rep.Metrics.CacheBytesRead,
		CacheBytesWritten: rep.Metrics.CacheBytesWritten,
	}
	for path, t := range rep.Outputs {
		out.Outputs[path] = tableResult(t)
	}
	m := rep.Metrics
	out.Stats = ExecStats{
		DiskBytesRead:    m.DiskBytesRead,
		DiskBytesWritten: m.DiskBytesWritten,
		NetBytes:         m.NetBytes,
		RowsProcessed:    m.RowsProcessed,
		Exchanges:        m.Exchanges,
		SpoolsShared:     m.SpoolMaterializations,
		SimulatedSeconds: m.SimulatedSeconds(cost.DefaultCluster()),
	}
	return out, nil
}

// CacheStats summarizes the session's result cache.
type CacheStats struct {
	// Entries and Bytes describe current occupancy.
	Entries int
	Bytes   int64
	// Insertions, Evictions, and Invalidations count entry lifecycle
	// events over the session's lifetime.
	Insertions    int64
	Evictions     int64
	Invalidations int64
}

// CacheStats returns a snapshot of the session cache.
func (s *Session) CacheStats() CacheStats {
	st := s.s.CacheStats()
	return CacheStats{
		Entries:       st.Entries,
		Bytes:         st.Bytes,
		Insertions:    st.Insertions,
		Evictions:     st.Evictions,
		Invalidations: st.Invalidations,
	}
}

// tableResult converts an executed table into the public Result form.
func tableResult(t *exec.Table) *Result {
	r := &Result{Columns: t.Schema.Names()}
	for _, row := range t.Rows {
		cells := make([]any, len(row))
		for i, v := range row {
			switch v.Kind {
			case relop.TInt:
				cells[i] = v.I
			case relop.TFloat:
				cells[i] = v.F
			default:
				cells[i] = v.S
			}
		}
		r.Rows = append(r.Rows, cells)
	}
	return r
}
