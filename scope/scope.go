// Package scope is the public API of the library: a SCOPE-style cloud
// query processor whose optimizer exploits common subexpressions in a
// cost-based way, reproducing "Exploiting Common Subexpressions for
// Cloud Query Processing" (ICDE 2012).
//
// Basic use:
//
//	db := scope.New()
//	db.RegisterStats("test.log", 2_000_000_000,
//	    scope.ColumnStats{Name: "A", Distinct: 20_000}, ...)
//	q, err := db.Compile(script)
//	p, err := q.Optimize()                  // CSE framework on
//	base, err := q.Optimize(scope.WithCSE(false)) // conventional baseline
//	fmt.Println(p.Explain(), p.EstimatedCost())
//
// To actually run a plan, load physical data with LoadTable and call
// Plan.Execute: the plan runs on a deterministic simulated
// shared-nothing cluster and returns every OUTPUT file's rows.
package scope

import (
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/lint"
	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/relop"
	"repro/internal/rules"
	"repro/internal/sqlparse"
	"repro/internal/stats"
)

// DB holds a statistics catalog and (optionally) physical tables for
// execution.
type DB struct {
	cat      *stats.Catalog
	fs       *exec.FileStore
	machines int
}

// New returns an empty DB. The simulated cluster defaults to 100
// machines for costing and 8 for execution granularity.
func New() *DB {
	return &DB{cat: stats.NewCatalog(), fs: exec.NewFileStore(), machines: 100}
}

// ColumnStats declares optimizer statistics for one column.
type ColumnStats struct {
	Name string
	// Distinct is the estimated number of distinct values.
	Distinct int64
}

// RegisterStats declares a file's statistics so the optimizer can
// cost plans over it. Execution additionally needs LoadTable.
func (db *DB) RegisterStats(path string, rows int64, cols ...ColumnStats) {
	ts := &stats.TableStats{Rows: rows, Columns: map[string]stats.ColumnStats{}}
	for _, c := range cols {
		ts.Columns[c.Name] = stats.ColumnStats{Distinct: c.Distinct, AvgBytes: 8}
	}
	db.cat.Put(path, ts)
}

// LoadTable stores physical rows for a file so plans reading it can
// execute. Supported cell types: int, int64, float64, string.
func (db *DB) LoadTable(path string, columns []string, rows [][]any) error {
	schema := make(relop.Schema, len(columns))
	for i, c := range columns {
		schema[i] = relop.Column{Name: c, Type: relop.TInt}
	}
	t := &exec.Table{Schema: schema}
	for ri, r := range rows {
		if len(r) != len(columns) {
			return fmt.Errorf("scope: row %d has %d cells, want %d", ri, len(r), len(columns))
		}
		row := make(relop.Row, len(r))
		for ci, cell := range r {
			v, err := toValue(cell)
			if err != nil {
				return fmt.Errorf("scope: row %d column %q: %w", ri, columns[ci], err)
			}
			row[ci] = v
			if ri == 0 {
				schema[ci].Type = v.Kind
			}
		}
		t.Rows = append(t.Rows, row)
	}
	db.fs.Put(path, t)
	return nil
}

func toValue(cell any) (relop.Value, error) {
	switch v := cell.(type) {
	case int:
		return relop.IntVal(int64(v)), nil
	case int64:
		return relop.IntVal(v), nil
	case float64:
		return relop.FloatVal(v), nil
	case string:
		return relop.StringVal(v), nil
	default:
		return relop.Value{}, fmt.Errorf("unsupported value type %T", cell)
	}
}

// FormatScript canonically formats a SCOPE script (one statement per
// line, canonical keyword casing, fully parenthesized expressions).
// It returns an error when the script does not parse.
func FormatScript(src string) (string, error) {
	s, err := sqlparse.Parse(src)
	if err != nil {
		return "", err
	}
	return sqlparse.Format(s), nil
}

// Query is a compiled script.
type Query struct {
	db  *DB
	src string
}

// Compile parses and binds a SCOPE script against the DB's catalog.
func (db *DB) Compile(src string) (*Query, error) {
	// Bind once now to surface errors early; optimization rebuilds a
	// fresh memo per call because the optimizer mutates it.
	if _, err := logical.BuildSource(src, db.cat); err != nil {
		return nil, err
	}
	return &Query{db: db, src: src}, nil
}

// optConfig collects Optimize options.
type optConfig struct {
	opts opt.Options
}

// Option configures one Optimize call.
type Option func(*optConfig)

// WithCSE toggles the common-subexpression framework (default on).
// Off yields the conventional-optimizer baseline.
func WithCSE(on bool) Option {
	return func(c *optConfig) { c.opts.EnableCSE = on }
}

// WithMachines sets the costed cluster size.
func WithMachines(n int) Option {
	return func(c *optConfig) {
		c.opts.Cluster.Machines = n
		c.opts.Rules.Machines = n
	}
}

// WithBudget bounds optimization time; phase 2 stops at the next
// round boundary once exceeded, keeping the best plan found.
func WithBudget(d time.Duration) Option {
	return func(c *optConfig) { c.opts.Timeout = d }
}

// WithMaxRounds caps phase-2 re-optimization rounds per LCA.
func WithMaxRounds(n int) Option {
	return func(c *optConfig) { c.opts.MaxRoundsPerLCA = n }
}

// WithOptWorkers sets the phase-2 round-evaluation pool width
// (default: GOMAXPROCS). Plans, costs, and round traces are identical
// at any width; only optimization wall clock changes.
func WithOptWorkers(n int) Option {
	return func(c *optConfig) { c.opts.Workers = n }
}

// WithSCOPEProfile restricts plans to sort-merge pipelines, matching
// the execution stack of the paper's prototype (Fig. 8 plan shapes).
func WithSCOPEProfile() Option {
	return func(c *optConfig) { c.opts.Rules = rules.SCOPEProfile() }
}

// WithoutIndependence disables the Sec. VIII-A independent-shared-
// groups optimization (ablation).
func WithoutIndependence() Option {
	return func(c *optConfig) { c.opts.DisableIndependence = true }
}

// WithoutRanking disables the Sec. VIII-B/C ranking extensions
// (ablation).
func WithoutRanking() Option {
	return func(c *optConfig) { c.opts.DisableRanking = true }
}

// WithProjectMerge enables the optional transformation composing
// adjacent projections into a single Compute stage.
func WithProjectMerge() Option {
	return func(c *optConfig) { c.opts.Rules.EnableProjectMerge = true }
}

// WithFilterPushdown enables the optional transformation moving
// filters below adjacent projections.
func WithFilterPushdown() Option {
	return func(c *optConfig) { c.opts.Rules.EnableFilterPushdown = true }
}

// WithLocalSharingOnly reproduces the pre-paper similar-subexpression
// techniques: shared subexpressions are planned under their locally
// optimal physical properties and every consumer compensates on top.
// Useful as a baseline to isolate the value of cost-based property
// reconciliation.
func WithLocalSharingOnly() Option {
	return func(c *optConfig) { c.opts.LocalSharingOnly = true }
}

// Stats summarizes the optimizer's search effort.
type Stats struct {
	// SharedGroups is the number of common subexpressions identified.
	SharedGroups int
	// Rounds is the number of phase-2 re-optimization rounds run.
	Rounds int
	// NaiveRounds is what a full cartesian product would have run.
	NaiveRounds int
	// RoundsPruned counts rounds aborted by the branch-and-bound cost
	// bound before their exact DAG cost was known (included in Rounds).
	RoundsPruned int
	// BudgetExhausted reports that the optimization budget stopped
	// phase 2 early.
	BudgetExhausted bool
}

// Plan is an optimized physical plan.
type Plan struct {
	db   *DB
	res  *opt.Result
	opts opt.Options
}

// Optimize optimizes the query and returns the best plan. Each call
// performs a fresh optimization.
func (q *Query) Optimize(options ...Option) (*Plan, error) {
	cfg := optConfig{opts: opt.DefaultOptions()}
	cfg.opts.Cluster.Machines = q.db.machines
	for _, o := range options {
		o(&cfg)
	}
	m, err := logical.BuildSource(q.src, q.db.cat)
	if err != nil {
		return nil, err
	}
	res, err := opt.Optimize(m, cfg.opts)
	if err != nil {
		return nil, err
	}
	return &Plan{db: q.db, res: res, opts: cfg.opts}, nil
}

// EstimatedCost returns the plan's DAG-aware estimated cost.
func (p *Plan) EstimatedCost() float64 { return p.res.Cost }

// Phase1Cost returns the cost of the plan phase 1 alone would have
// chosen (equal to EstimatedCost when CSE is off or nothing shared).
func (p *Plan) Phase1Cost() float64 { return p.res.Phase1Cost }

// Explain renders the plan as an indented operator tree with
// delivered physical properties, estimated rows, and per-operator
// costs; shared spools print once.
func (p *Plan) Explain() string { return plan.Format(p.res.Plan) }

// DOT renders the plan DAG in Graphviz dot syntax.
func (p *Plan) DOT(title string) string { return plan.DOT(p.res.Plan, title) }

// Stats reports optimizer search effort.
func (p *Plan) Stats() Stats {
	s := p.res.Stats
	return Stats{
		SharedGroups:    s.SharedGroups,
		Rounds:          s.Rounds,
		NaiveRounds:     s.NaiveCombinations,
		RoundsPruned:    s.RoundsPruned,
		BudgetExhausted: s.BudgetExhausted,
	}
}

// OptimizeTime returns the wall-clock optimization duration.
func (p *Plan) OptimizeTime() time.Duration { return p.res.Duration }

// Round describes one phase-2 re-optimization round: the property
// combination enforced at the shared groups and the resulting plan
// cost.
type Round struct {
	Pins string
	Cost float64
	Best bool
	// Pruned marks a round aborted by the branch-and-bound cost bound;
	// its Cost is +Inf.
	Pruned bool
	// Fallback marks the synthetic trace left when no evaluated round
	// produced a plan (budget expired or every combination infeasible).
	Fallback bool
}

// Rounds traces the phase-2 rounds in evaluation order — how the
// optimizer searched the enforceable property combinations.
func (p *Plan) Rounds() []Round {
	out := make([]Round, len(p.res.Rounds))
	for i, r := range p.res.Rounds {
		out[i] = Round{Pins: r.Pins, Cost: r.Cost, Best: r.Best, Pruned: r.Pruned, Fallback: r.Fallback}
	}
	return out
}

// Validate statically checks the plan's physical soundness (property
// consistency, colocation, clustering, join co-partitioning). The
// optimizer only emits valid plans; Validate exists for auditing and
// for plans loaded or transformed externally.
func (p *Plan) Validate() error { return opt.ValidatePlan(p.res.Plan) }

// Diagnostic is one static-analysis finding on a plan: a stable code
// (P1–P5 for the global sharing invariants, V1–V7 for local physical
// soundness), the analyzer that produced it, a severity ("error",
// "warning", "info"), an operator-path location, and a message.
type Diagnostic struct {
	Code     string
	Analyzer string
	Severity string
	Pos      string
	Message  string
}

// String renders the diagnostic in "pos: severity: message [code]"
// compiler format.
func (d Diagnostic) String() string {
	pos := d.Pos
	if pos == "" {
		pos = "<plan>"
	}
	return fmt.Sprintf("%s: %s: %s [%s]", pos, d.Severity, d.Message, d.Code)
}

// Lint runs the full static-analysis catalog on the plan — the global
// common-subexpression invariants of the paper (single spool per
// shared group, pin consistency across consumer paths, DAG/tree cost
// coherence, missed CSEs, redundant enforcers) plus the local
// validation checks — and returns the findings, empty when clean.
// Sharing bugs are silent cost regressions rather than wrong answers,
// so Lint catches what Execute-based testing cannot.
//
// Codes passed as disable are dropped from the result — the
// programmatic counterpart of scopelint's -disable flag. A code that
// no catalog registers is reported as a synthetic S4 error instead of
// being silently ignored, so a typo cannot quietly disable nothing.
func (p *Plan) Lint(disable ...string) []Diagnostic {
	ds := p.res.Lint
	if ds == nil {
		ds = opt.LintPlan(p.res, p.opts)
	}
	known := map[string]bool{}
	for _, c := range append(lint.Codes(), opt.ValidationCodes()...) {
		known[c] = true
	}
	off := map[string]bool{}
	var out []Diagnostic
	for _, c := range disable {
		if !known[c] {
			out = append(out, Diagnostic{
				Code:     "S4",
				Analyzer: "ignore-directive",
				Severity: lint.Error.String(),
				Message:  fmt.Sprintf("Lint(disable): unknown diagnostic code %q", c),
			})
			continue
		}
		off[c] = true
	}
	for _, d := range ds {
		if off[d.Code] {
			continue
		}
		out = append(out, Diagnostic{
			Code:     d.Code,
			Analyzer: d.Analyzer,
			Severity: d.Severity.String(),
			Pos:      d.Pos,
			Message:  d.Message,
		})
	}
	return out
}

// JSON encodes the physical plan (DAG structure preserved) for
// external tooling or caching; LoadPlan restores it.
func (p *Plan) JSON() ([]byte, error) { return plan.MarshalPlan(p.res.Plan) }

// LoadPlan decodes a plan produced by Plan.JSON. The loaded plan can
// be explained, validated, and executed against this DB's tables;
// optimizer statistics (rounds, phase-1 cost) are not part of the
// encoding.
func (db *DB) LoadPlan(data []byte) (*Plan, error) {
	root, err := plan.UnmarshalPlan(data)
	if err != nil {
		return nil, err
	}
	model := cost.NewModel(cost.DefaultCluster())
	c := plan.DAGCost(root, model)
	return &Plan{db: db, res: &opt.Result{Plan: root, Cost: c, Phase1Plan: root, Phase1Cost: c}}, nil
}

// ExplainAnalyze executes the plan on the simulated cluster and
// renders the operator tree annotated with estimated versus actual
// rows and bytes, the per-node q-error, and MISESTIMATE flags on
// nodes whose estimate missed by more than the default threshold —
// the estimator's report card on this query. machines must be
// positive; it is part of the experiment, not a preference with a
// fallback.
func (p *Plan) ExplainAnalyze(machines int) (string, error) {
	cl, err := exec.NewCluster(machines, p.db.fs)
	if err != nil {
		return "", err
	}
	_, actuals, err := cl.RunAnalyzed(p.res.Plan)
	if err != nil {
		return "", err
	}
	return exec.NewAnalysis(p.res.Plan, actuals, 0).String(), nil
}

// Result is one OUTPUT file produced by Execute.
type Result struct {
	Columns []string
	Rows    [][]any
}

// ExecStats meters one execution on the simulated cluster.
type ExecStats struct {
	DiskBytesRead    int64
	DiskBytesWritten int64
	NetBytes         int64
	RowsProcessed    int64
	Exchanges        int
	SpoolsShared     int
	// SimulatedSeconds is a coarse lower-bound running time on the
	// costed cluster.
	SimulatedSeconds float64
}

// Execute runs the plan on the simulated cluster over the tables
// loaded with LoadTable, returning every OUTPUT file keyed by path.
// Execution validates the physical properties the plan relies on
// (colocation and clustering) and fails loudly on violations.
// machines must be positive. Partitions execute across a worker pool
// sized to the available CPUs; results are identical to a serial run.
func (p *Plan) Execute(machines int) (map[string]*Result, ExecStats, error) {
	cl, err := exec.NewCluster(machines, p.db.fs)
	if err != nil {
		return nil, ExecStats{}, err
	}
	outs, err := cl.Run(p.res.Plan)
	if err != nil {
		return nil, ExecStats{}, err
	}
	results := make(map[string]*Result, len(outs))
	for path, t := range outs {
		r := &Result{Columns: t.Schema.Names()}
		for _, row := range t.Rows {
			cells := make([]any, len(row))
			for i, v := range row {
				switch v.Kind {
				case relop.TInt:
					cells[i] = v.I
				case relop.TFloat:
					cells[i] = v.F
				default:
					cells[i] = v.S
				}
			}
			r.Rows = append(r.Rows, cells)
		}
		results[path] = r
	}
	m := cl.Metrics()
	return results, ExecStats{
		DiskBytesRead:    m.DiskBytesRead,
		DiskBytesWritten: m.DiskBytesWritten,
		NetBytes:         m.NetBytes,
		RowsProcessed:    m.RowsProcessed,
		Exchanges:        m.Exchanges,
		SpoolsShared:     m.SpoolMaterializations,
		SimulatedSeconds: m.SimulatedSeconds(cost.DefaultCluster()),
	}, nil
}
