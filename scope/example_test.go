package scope_test

import (
	"fmt"
	"log"

	"repro/scope"
)

// Example reproduces the paper's motivating script end to end: the
// optimizer shares the GROUP BY A,B,C intermediate, reconciles the
// consumers' conflicting partitioning requirements on {B}, and the
// plan executes on the simulated cluster.
func Example() {
	db := scope.New()
	db.RegisterStats("test.log", 2_000_000_000,
		scope.ColumnStats{Name: "A", Distinct: 20_000},
		scope.ColumnStats{Name: "B", Distinct: 5_000},
		scope.ColumnStats{Name: "C", Distinct: 50_000},
		scope.ColumnStats{Name: "D", Distinct: 1 << 40},
	)
	if err := db.LoadTable("test.log", []string{"A", "B", "C", "D"}, [][]any{
		{1, 1, 1, 10}, {1, 1, 1, 5}, {1, 2, 2, 7}, {2, 2, 2, 4},
	}); err != nil {
		log.Fatal(err)
	}

	q, err := db.Compile(`
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
`)
	if err != nil {
		log.Fatal(err)
	}
	conventional, err := q.Optimize(scope.WithCSE(false))
	if err != nil {
		log.Fatal(err)
	}
	shared, err := q.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared groups: %d\n", shared.Stats().SharedGroups)
	fmt.Printf("cheaper: %v\n", shared.EstimatedCost() < conventional.EstimatedCost())

	results, stats, err := shared.Execute(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outputs: %d, shared spools executed: %d\n", len(results), stats.SpoolsShared)
	// Output:
	// shared groups: 1
	// cheaper: true
	// outputs: 2, shared spools executed: 1
}
