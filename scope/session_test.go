package scope

import (
	"reflect"
	"testing"
)

const sessB = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R3 = SELECT A,C,Sum(S) as S3 FROM R GROUP BY A,C;
OUTPUT R3 TO "b3.out" ORDER BY A, C;
`

func sessionDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.RegisterStats("test.log", 2_000_000_000,
		ColumnStats{Name: "A", Distinct: 100},
		ColumnStats{Name: "B", Distinct: 50},
		ColumnStats{Name: "C", Distinct: 200},
		ColumnStats{Name: "D", Distinct: 1 << 40},
	)
	rows := make([][]any, 0, 300)
	for i := 0; i < 300; i++ {
		rows = append(rows, []any{i % 7, i % 5, i % 11, i * 3})
	}
	if err := db.LoadTable("test.log", []string{"A", "B", "C", "D"}, rows); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSessionSharesAcrossScripts(t *testing.T) {
	db := sessionDB(t)
	s, err := db.NewSession(8)
	if err != nil {
		t.Fatal(err)
	}
	a := s1SessionOrdered()
	runA, err := s.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if runA.Admitted == 0 || runA.CacheHits != 0 {
		t.Fatalf("script A: admitted=%d hits=%d", runA.Admitted, runA.CacheHits)
	}
	if st := s.CacheStats(); st.Entries == 0 || st.Bytes == 0 {
		t.Fatalf("cache empty after admission: %+v", st)
	}

	warm, err := s.Run(sessB)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits == 0 || warm.CacheBytesRead == 0 {
		t.Fatalf("warm run did not use the cache: %+v", warm)
	}

	// Cold baseline on a fresh DB: identical results, more bytes moved.
	cold, err := func() (*SessionRun, error) {
		s2, err := sessionDB(t).NewSession(8)
		if err != nil {
			return nil, err
		}
		return s2.Run(sessB)
	}()
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.DiskBytesRead+warm.Stats.NetBytes >= cold.Stats.DiskBytesRead+cold.Stats.NetBytes {
		t.Errorf("warm disk+net %d not below cold %d",
			warm.Stats.DiskBytesRead+warm.Stats.NetBytes, cold.Stats.DiskBytesRead+cold.Stats.NetBytes)
	}
	if !reflect.DeepEqual(warm.Outputs["b3.out"], cold.Outputs["b3.out"]) {
		t.Error("warm and cold results differ")
	}
}

func TestSessionInvalidatesOnLoadTable(t *testing.T) {
	db := sessionDB(t)
	s, err := db.NewSession(8, WithSessionWorkers(2), WithCacheBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(s1SessionOrdered()); err != nil {
		t.Fatal(err)
	}
	// Mutate the source table: dependent entries must not serve B.
	rows := make([][]any, 0, 100)
	for i := 0; i < 100; i++ {
		rows = append(rows, []any{i % 7, i % 5, i % 11, i * 31})
	}
	if err := db.LoadTable("test.log", []string{"A", "B", "C", "D"}, rows); err != nil {
		t.Fatal(err)
	}
	warm, err := s.Run(sessB)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != 0 {
		t.Errorf("stale hit after LoadTable: %+v", warm)
	}
	if st := s.CacheStats(); st.Invalidations == 0 {
		t.Errorf("no invalidation recorded: %+v", st)
	}
}

// s1SessionOrdered is the motivating script with deterministic output
// order, so session results compare bit-for-bit.
func s1SessionOrdered() string {
	return `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "a1.out" ORDER BY A, B;
OUTPUT R2 TO "a2.out" ORDER BY B, C;
`
}
