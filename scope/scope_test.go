package scope

import (
	"strings"
	"testing"
	"time"
)

const s1 = `
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
`

func testDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.RegisterStats("test.log", 2_000_000_000,
		ColumnStats{Name: "A", Distinct: 20_000},
		ColumnStats{Name: "B", Distinct: 5_000},
		ColumnStats{Name: "C", Distinct: 50_000},
		ColumnStats{Name: "D", Distinct: 1 << 40},
	)
	return db
}

func TestCompileErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Compile("not a script"); err == nil {
		t.Error("garbage should not compile")
	}
	if _, err := db.Compile(`R = SELECT X FROM Y; OUTPUT R TO "o";`); err == nil {
		t.Error("unknown source should not compile")
	}
	if _, err := db.Compile(s1); err != nil {
		t.Errorf("S1 should compile: %v", err)
	}
}

func TestOptimizeCSEvsConventional(t *testing.T) {
	db := testDB(t)
	q, err := db.Compile(s1)
	if err != nil {
		t.Fatal(err)
	}
	cse, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	conv, err := q.Optimize(WithCSE(false))
	if err != nil {
		t.Fatal(err)
	}
	if cse.EstimatedCost() >= conv.EstimatedCost() {
		t.Errorf("cse %v should beat conventional %v", cse.EstimatedCost(), conv.EstimatedCost())
	}
	if cse.Stats().SharedGroups != 1 || cse.Stats().Rounds == 0 {
		t.Errorf("stats = %+v", cse.Stats())
	}
	if conv.Stats().SharedGroups != 0 {
		t.Errorf("conventional stats = %+v", conv.Stats())
	}
	if cse.EstimatedCost() > cse.Phase1Cost() {
		t.Error("final cost must not exceed phase-1 cost")
	}
	if !strings.Contains(cse.Explain(), "Spool") {
		t.Error("Explain should show the shared spool")
	}
	if !strings.Contains(cse.DOT("t"), "digraph") {
		t.Error("DOT output malformed")
	}
	if cse.OptimizeTime() <= 0 || cse.OptimizeTime() > time.Second {
		t.Errorf("optimize time = %v", cse.OptimizeTime())
	}
}

func TestOptionsApply(t *testing.T) {
	db := testDB(t)
	q, err := db.Compile(s1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Optimize(WithSCOPEProfile(), WithMachines(50), WithMaxRounds(2),
		WithoutIndependence(), WithoutRanking())
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats().Rounds > 2 {
		t.Errorf("rounds = %d, cap 2", p.Stats().Rounds)
	}
	if strings.Contains(p.Explain(), "HashAgg") {
		t.Error("SCOPE profile must not use hash aggregation")
	}
	// A tiny budget still yields a valid plan.
	pb, err := q.Optimize(WithBudget(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if !pb.Stats().BudgetExhausted {
		t.Error("budget should be exhausted")
	}
}

func TestLocalSharingBaseline(t *testing.T) {
	db := testDB(t)
	q, err := db.Compile(s1)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := q.Optimize(WithCSE(false))
	if err != nil {
		t.Fatal(err)
	}
	local, err := q.Optimize(WithLocalSharingOnly())
	if err != nil {
		t.Fatal(err)
	}
	full, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's separation: cost-based < local sharing < no sharing.
	if !(full.EstimatedCost() < local.EstimatedCost() && local.EstimatedCost() < conv.EstimatedCost()) {
		t.Errorf("expected full %v < local %v < conventional %v",
			full.EstimatedCost(), local.EstimatedCost(), conv.EstimatedCost())
	}
}

func TestLoadAndExecute(t *testing.T) {
	db := testDB(t)
	cols := []string{"A", "B", "C", "D"}
	if err := db.LoadTable("test.log", cols, [][]any{
		{1, 1, 1, 10}, {1, 1, 1, 5}, {1, 2, 2, 7}, {2, 2, 2, 4}, {2, 1, 3, 9},
	}); err != nil {
		t.Fatal(err)
	}
	q, err := db.Compile(s1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	outs, st, err := p.Execute(4)
	if err != nil {
		t.Fatal(err)
	}
	r1 := outs["result1.out"]
	if r1 == nil {
		t.Fatal("missing result1.out")
	}
	if got := strings.Join(r1.Columns, ","); got != "A,B,S1" {
		t.Errorf("columns = %s", got)
	}
	// A=1,B=1 → 15; A=1,B=2 → 7; A=2,B=2 → 4; A=2,B=1 → 9.
	sums := map[[2]int64]int64{}
	for _, row := range r1.Rows {
		sums[[2]int64{row[0].(int64), row[1].(int64)}] = row[2].(int64)
	}
	want := map[[2]int64]int64{{1, 1}: 15, {1, 2}: 7, {2, 2}: 4, {2, 1}: 9}
	for k, v := range want {
		if sums[k] != v {
			t.Errorf("S1[%v] = %d, want %d", k, sums[k], v)
		}
	}
	if st.SpoolsShared != 1 {
		t.Errorf("exec stats = %+v", st)
	}
	if st.SimulatedSeconds <= 0 {
		t.Error("simulated time should be positive")
	}
}

func TestLoadTableErrors(t *testing.T) {
	db := New()
	if err := db.LoadTable("t", []string{"A"}, [][]any{{1, 2}}); err == nil {
		t.Error("ragged row should fail")
	}
	if err := db.LoadTable("t", []string{"A"}, [][]any{{struct{}{}}}); err == nil {
		t.Error("unsupported type should fail")
	}
	if err := db.LoadTable("t", []string{"A", "B", "C"}, [][]any{
		{int64(1), 2.5, "x"},
	}); err != nil {
		t.Errorf("mixed types should load: %v", err)
	}
}

func TestExecuteMissingData(t *testing.T) {
	db := testDB(t) // stats only, no physical table
	q, err := db.Compile(s1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Execute(2); err == nil {
		t.Error("executing without loaded data should fail")
	}
}

func TestFormatScript(t *testing.T) {
	out, err := FormatScript(`r = select A , Sum(b) as s from T group by A;output r to "o";`)
	if err != nil {
		t.Fatal(err)
	}
	want := "r = SELECT A, Sum(b) AS s FROM T GROUP BY A;\nOUTPUT r TO \"o\";\n"
	if out != want {
		t.Errorf("FormatScript = %q", out)
	}
	if _, err := FormatScript("garbage"); err == nil {
		t.Error("garbage should not format")
	}
}

func TestRoundsTraceAndValidate(t *testing.T) {
	db := testDB(t)
	q, err := db.Compile(s1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	rounds := p.Rounds()
	if len(rounds) == 0 {
		t.Fatal("no rounds traced")
	}
	bests := 0
	minCost := rounds[0].Cost
	for _, r := range rounds {
		if r.Pins == "" {
			t.Error("round without pins")
		}
		if r.Best {
			bests++
			if r.Cost != p.EstimatedCost() {
				t.Errorf("best round cost %v != plan cost %v", r.Cost, p.EstimatedCost())
			}
		}
		if r.Cost < minCost {
			minCost = r.Cost
		}
	}
	if bests != 1 {
		t.Errorf("best rounds = %d, want 1", bests)
	}
	if minCost != p.EstimatedCost() {
		t.Errorf("cheapest round %v should be the chosen plan %v", minCost, p.EstimatedCost())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestExplainAnalyze(t *testing.T) {
	db := testDB(t)
	if err := db.LoadTable("test.log", []string{"A", "B", "C", "D"}, [][]any{
		{1, 1, 1, 10}, {1, 1, 1, 5}, {1, 2, 2, 7}, {2, 2, 2, 4}, {2, 1, 3, 9},
	}); err != nil {
		t.Fatal(err)
	}
	q, err := db.Compile(s1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.ExplainAnalyze(3)
	if err != nil {
		t.Fatal(err)
	}
	// Every node line must carry both estimate and actual; the
	// extract's actual is the loaded row count.
	if !strings.Contains(out, "est=") || !strings.Contains(out, "actual=") {
		t.Fatalf("missing annotations:\n%s", out)
	}
	if !strings.Contains(out, "actual=5") {
		t.Errorf("extract actual should be 5 rows:\n%s", out)
	}
	if strings.Contains(out, "actual=?") {
		t.Errorf("all executed nodes should record actuals:\n%s", out)
	}
	if !strings.Contains(out, "(shared, see above)") {
		t.Errorf("shared spool should be elided:\n%s", out)
	}
}

func TestPlanJSONRoundTripThroughFacade(t *testing.T) {
	db := testDB(t)
	if err := db.LoadTable("test.log", []string{"A", "B", "C", "D"}, [][]any{
		{1, 1, 1, 10}, {1, 1, 1, 5}, {1, 2, 2, 7}, {2, 2, 2, 4}, {2, 1, 3, 9},
	}); err != nil {
		t.Fatal(err)
	}
	q, err := db.Compile(s1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	orig, _, err := p.Execute(3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := db.LoadPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("loaded plan invalid: %v", err)
	}
	if loaded.Explain() != p.Explain() {
		t.Error("loaded plan explains differently")
	}
	replay, _, err := loaded.Execute(3)
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range orig {
		got := replay[path]
		if got == nil || len(got.Rows) != len(want.Rows) {
			t.Errorf("replayed %q differs", path)
		}
	}
	if _, err := db.LoadPlan([]byte("junk")); err == nil {
		t.Error("junk should not load")
	}
}
