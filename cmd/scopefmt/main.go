// Command scopefmt canonically formats SCOPE scripts: one statement
// per line, canonical keyword casing, fully parenthesized
// expressions. Reads the named files (or stdin with no arguments) and
// prints the formatted script to stdout; -l lists files whose
// formatting differs instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/sqlparse"
)

func main() {
	list := flag.Bool("l", false, "list files whose formatting differs")
	flag.Parse()

	if flag.NArg() == 0 {
		src, err := io.ReadAll(os.Stdin)
		exitOn(err)
		out, err := format(string(src))
		exitOn(err)
		fmt.Print(out)
		return
	}
	differs := false
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		exitOn(err)
		out, err := format(string(src))
		if err != nil {
			exitOn(fmt.Errorf("%s: %w", path, err))
		}
		if *list {
			if out != string(src) {
				fmt.Println(path)
				differs = true
			}
			continue
		}
		fmt.Print(out)
	}
	if differs {
		os.Exit(1)
	}
}

func format(src string) (string, error) {
	s, err := sqlparse.Parse(src)
	if err != nil {
		return "", err
	}
	return sqlparse.Format(s), nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scopefmt:", err)
		os.Exit(1)
	}
}
