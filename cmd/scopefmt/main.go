// Command scopefmt canonically formats SCOPE scripts: one statement
// per line, canonical keyword casing, fully parenthesized
// expressions. Reads the named files (or stdin with no arguments) and
// prints the formatted script to stdout; -l lists files whose
// formatting differs instead and exits with status 1 when any do.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/sqlparse"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scopefmt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("l", false, "list files whose formatting differs")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() == 0 {
		src, err := io.ReadAll(stdin)
		if err != nil {
			fmt.Fprintln(stderr, "scopefmt:", err)
			return 2
		}
		out, err := format(string(src))
		if err != nil {
			fmt.Fprintln(stderr, "scopefmt:", err)
			return 2
		}
		fmt.Fprint(stdout, out)
		return 0
	}
	differs := false
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "scopefmt:", err)
			return 2
		}
		out, err := format(string(src))
		if err != nil {
			fmt.Fprintf(stderr, "scopefmt: %s: %v\n", path, err)
			return 2
		}
		if *list {
			if out != string(src) {
				fmt.Fprintln(stdout, path)
				differs = true
			}
			continue
		}
		fmt.Fprint(stdout, out)
	}
	if differs {
		return 1
	}
	return 0
}

func format(src string) (string, error) {
	s, err := sqlparse.Parse(src)
	if err != nil {
		return "", err
	}
	return sqlparse.Format(s), nil
}
