package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const messyScript = `R0 = extract A,B from "t.log" using LogExtractor;
  output R0 to "o1";`

func TestStdinFormats(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(nil, strings.NewReader(messyScript), &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "EXTRACT") || !strings.Contains(out.String(), "OUTPUT") {
		t.Errorf("keywords not canonicalized: %q", out.String())
	}
}

// TestListExitCode pins the -l contract: list exactly the files whose
// formatting differs and exit 1 when any do, 0 when none do.
func TestListExitCode(t *testing.T) {
	dir := t.TempDir()
	messy := filepath.Join(dir, "messy.scope")
	if err := os.WriteFile(messy, []byte(messyScript), 0o644); err != nil {
		t.Fatal(err)
	}
	var canon bytes.Buffer
	if code := run([]string{messy}, nil, &canon, os.Stderr); code != 0 {
		t.Fatalf("formatting pass failed with exit %d", code)
	}
	clean := filepath.Join(dir, "clean.scope")
	if err := os.WriteFile(clean, []byte(canon.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if code := run([]string{"-l", clean, messy}, nil, &out, &errb); code != 1 {
		t.Fatalf("-l with a differing file: exit = %d, want 1", code)
	}
	if got := strings.TrimSpace(out.String()); got != messy {
		t.Errorf("-l listed %q, want only %q", got, messy)
	}

	out.Reset()
	if code := run([]string{"-l", clean}, nil, &out, &errb); code != 0 {
		t.Fatalf("-l with only canonical files: exit = %d, want 0", code)
	}
	if out.Len() != 0 {
		t.Errorf("-l on canonical file printed %q", out.String())
	}
}

func TestErrorsExitTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{filepath.Join(t.TempDir(), "none.scope")}, nil, &out, &errb); code != 2 {
		t.Errorf("missing file: exit = %d, want 2", code)
	}
	if code := run(nil, strings.NewReader("NOT A SCRIPT"), &out, &errb); code != 2 {
		t.Errorf("parse failure: exit = %d, want 2", code)
	}
}
