// Command scoped is the multi-tenant query service: one long-running
// process serving the builtin micro dataset, where every client's
// scripts run through a single shared cross-query session — so one
// tenant's scripts are answered from common subexpressions another
// tenant's scripts materialized.
//
// Usage:
//
//	scoped -addr 127.0.0.1:8421 -machines 8
//
// Clients POST script text to /run (tenant named by the
// X-Scope-Tenant header) and receive a JSON report: optimizer cost,
// cache hits/misses, admitted artifacts, quota rejections, and an
// FNV-64a digest per OUTPUT table. GET /metrics dumps the server's
// counter registry (global and per-tenant); GET /healthz is the
// liveness probe. SIGINT/SIGTERM drain in-flight runs before exit.
//
// Scheduling knobs: -window batches arrivals so scripts with
// overlapping uncovered subexpressions fold into one admission pass;
// -inflight bounds concurrent folded groups; -queue bounds waiting
// requests (beyond it clients get 429); -timeout cancels overlong
// runs; -tenant-quota caps each tenant's cache bytes.
//
// Self test:
//
//	scoped -selftest
//
// starts the server on a loopback listener, drives concurrent clients
// over the paper's S1–S4 scripts for several rounds, and verifies
// every response is bit-identical to a cold sequential run of the
// same script on an identical dataset, that warm rounds were served
// from the shared cache, and that the HTTP surface answers. Exits 0
// only if all checks pass.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/cliflags"
	"repro/internal/exec"
	"repro/internal/obs/eventlog"
	"repro/internal/serve"
	"repro/internal/share"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8421", "listen address")
	cluster := cliflags.ClusterFlags(flag.CommandLine, 8, runtime.GOMAXPROCS(0))
	window := flag.Duration("window", 10*time.Millisecond,
		"batching window: arrivals are collected this long, then overlapping scripts fold into one admission pass")
	inflight := flag.Int("inflight", 0, "max concurrently executing folded groups (0 = one per CPU)")
	queue := flag.Int("queue", serve.DefaultQueueDepth, "max requests awaiting dispatch before 429")
	timeout := flag.Duration("timeout", 0, "per-request execution timeout (0 = none)")
	tenantQuota := flag.Int64("tenant-quota", 0, "per-tenant cache byte quota (0 = unlimited)")
	cacheBytes := flag.Int64("cache-bytes", 0, "shared result-cache capacity in bytes (0 = session default)")
	events := flag.String("events", "",
		"export the full query event log (JSONL) to this file on shutdown")
	eventCap := flag.Int("event-cap", 0,
		"flight-recorder ring capacity (0 = eventlog default)")
	analyze := flag.Bool("analyze", false,
		"run every request under EXPLAIN ANALYZE and record q-error in its event")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	selftest := flag.Bool("selftest", false,
		"start on a loopback listener, drive concurrent clients, verify results, and exit")
	flag.Parse()

	if err := cluster.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "scoped: %v\n", err)
		os.Exit(2)
	}

	w := bench.Small("scoped", "")
	cfg := serve.Config{
		Catalog:          w.Cat,
		FS:               w.FS,
		Machines:         cluster.Machines,
		Workers:          cluster.Workers,
		CacheBytes:       *cacheBytes,
		Window:           *window,
		MaxInFlight:      *inflight,
		QueueDepth:       *queue,
		Timeout:          *timeout,
		TenantCacheBytes: *tenantQuota,
		EventCap:         *eventCap,
		Analyze:          *analyze,
		Pprof:            *pprofFlag,
		// Failed requests dump the flight recorder to stderr so the
		// events leading up to a failure survive in the service log.
		FailureDump: os.Stderr,
	}
	if *events != "" {
		// The sink buffers the full history through the metered
		// FileStore; shutdown exports it to the host file.
		cfg.EventSinkPath = "/sys/events.jsonl"
	}
	srv, err := serve.New(cfg)
	exitOn(err)

	if *selftest {
		runSelftest(srv, cluster.Machines, cluster.Workers)
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ln, err := net.Listen("tcp", *addr)
	exitOn(err)
	fmt.Printf("scoped: serving micro dataset on http://%s (%d machines, window %s)\n",
		ln.Addr(), cluster.Machines, *window)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("scoped: %v, draining\n", sig)
	case err := <-errc:
		exitOn(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	exitOn(srv.Shutdown(ctx))
	if *events != "" {
		srv.FlushEvents()
		exitOn(os.WriteFile(*events, srv.EventLog().SinkJSONL(), 0o644))
		fmt.Printf("scoped: event log written to %s (%d events)\n", *events, srv.EventLog().Len())
	}
	fmt.Println("scoped: drained")
}

// selftestScripts are the paper's Fig. 6 micro scripts; all share the
// same aggregation subexpressions over the micro dataset, so
// concurrent clients exercise cross-tenant sharing.
var selftestScripts = []struct {
	name   string
	script string
}{
	{"s1", bench.ScriptS1},
	{"s2", bench.ScriptS2},
	{"s3", bench.ScriptS3},
	{"s4", bench.ScriptS4},
}

// runSelftest drives the server exactly as concurrent clients would
// and verifies shared-cache answers are bit-identical to cold
// sequential ones.
func runSelftest(srv *serve.Server, machines, workers int) {
	// Cold references: each script in its own fresh session over an
	// identically generated dataset (same generator, same seed).
	refs := make([]map[string]*exec.Table, len(selftestScripts))
	for i, sc := range selftestScripts {
		w := bench.Small("scoped-ref-"+sc.name, "")
		sess, err := share.NewSession(share.Config{
			Catalog: w.Cat, FS: w.FS, Machines: machines, Workers: workers,
		})
		exitOn(err)
		rep, err := sess.Run(sc.script)
		exitOn(err)
		refs[i] = rep.Outputs
	}

	const rounds = 3
	clients := rounds * len(selftestScripts)
	var wg sync.WaitGroup
	reports := make([]*share.RunReport, clients)
	errs := make([]error, clients)
	for r := 0; r < rounds; r++ {
		for i := range selftestScripts {
			wg.Add(1)
			go func(slot, i int) {
				defer wg.Done()
				reports[slot], errs[slot] = srv.Submit(context.Background(),
					"tenant-"+selftestScripts[i].name, selftestScripts[i].script)
			}(r*len(selftestScripts)+i, i)
		}
	}
	wg.Wait()

	hits := 0
	for slot, rep := range reports {
		if errs[slot] != nil {
			fail("client %d (%s): %v", slot, selftestScripts[slot%len(selftestScripts)].name, errs[slot])
		}
		i := slot % len(selftestScripts)
		want := refs[i]
		if len(rep.Outputs) != len(want) {
			fail("client %d: %d outputs, want %d", slot, len(rep.Outputs), len(want))
		}
		for p, wt := range want {
			if gt := rep.Outputs[p]; gt == nil || !gt.Equal(wt) {
				fail("client %d output %q differs from cold sequential run", slot, p)
			}
		}
		hits += rep.CacheHits
	}
	if hits == 0 {
		fail("no client was served from the shared cache")
	}

	// HTTP surface smoke over a real loopback listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	exitOn(err)
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	req, err := http.NewRequest(http.MethodPost, base+"/run", strings.NewReader(bench.ScriptS1))
	exitOn(err)
	req.Header.Set(serve.TenantHeader, "http-client")
	resp, err := http.DefaultClient.Do(req)
	exitOn(err)
	var rr serve.RunResponse
	exitOn(json.NewDecoder(resp.Body).Decode(&rr))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rr.CacheHits == 0 {
		fail("HTTP run: status %d, hits %d (want 200 with warm hits)", resp.StatusCode, rr.CacheHits)
	}
	hresp, err := http.Get(base + "/healthz")
	exitOn(err)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		fail("healthz: status %d", hresp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	exitOn(srv.Shutdown(ctx))

	// The event log must hold exactly one event per submitted script
	// (the concurrent clients plus the HTTP smoke run), each with
	// output digests matching the cold sequential references.
	events := srv.EventLog().Events()
	if len(events) != clients+1 {
		fail("event log holds %d events, want %d (one per submitted script)", len(events), clients+1)
	}
	scriptIdx := map[string]int{}
	for i, sc := range selftestScripts {
		scriptIdx[eventlog.ScriptID(sc.script)] = i
	}
	for _, ev := range events {
		if ev.Error != "" {
			fail("event %s records an error: %s", ev.ID, ev.Error)
		}
		i, ok := scriptIdx[ev.Script]
		if !ok {
			fail("event %s names unknown script digest %s", ev.ID, ev.Script)
		}
		want := eventlog.DigestOutputs(refs[i])
		if len(ev.Outputs) != len(want) {
			fail("event %s (%s): %d outputs, want %d", ev.ID, selftestScripts[i].name, len(ev.Outputs), len(want))
		}
		for j := range want {
			if ev.Outputs[j] != want[j] {
				fail("event %s (%s): output %d digest %+v, want %+v (event stream diverges from cold run)",
					ev.ID, selftestScripts[i].name, j, ev.Outputs[j], want[j])
			}
		}
	}

	snap := srv.Registry().Snapshot()
	fmt.Printf("selftest: %d concurrent clients bit-identical to sequential; warm hits=%d folded=%d batches=%d events=%d\n",
		clients, hits, snap.Counters["serve.folded"], snap.Counters["serve.batches"], len(events))
	fmt.Println("selftest ok")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scoped: selftest: "+format+"\n", args...)
	os.Exit(1)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoped:", err)
		os.Exit(1)
	}
}
