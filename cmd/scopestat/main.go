// Command scopestat is the operator's view of a running scoped
// service: it polls the server's Prometheus exposition and renders a
// one-screen live summary of the sharing machinery — hit ratio, fold
// rate, admissions, evictions, spills, and latency quantiles — or
// replays a query event log offline.
//
// Live view (polls every -interval until interrupted; -once for a
// single sample):
//
//	scopestat -addr 127.0.0.1:8421
//
// Offline replay (the paper's log-analysis methodology over our own
// telemetry): read an events.jsonl stream and recompute the sharing
// statistics from the per-request records alone —
//
//	scopestat -replay events.jsonl
//
// The replay totals match the live registry exactly: both sides are
// fed from the same per-run reports (the additivity invariant the
// serve tests pin).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/eventlog"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8421", "scoped server address (host:port)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval for the live view")
	once := flag.Bool("once", false, "print one sample and exit")
	replay := flag.String("replay", "", "replay an events.jsonl file offline instead of polling")
	flag.Parse()

	if *replay != "" {
		if err := runReplay(*replay, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "scopestat:", err)
			os.Exit(1)
		}
		return
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	for {
		if err := pollOnce(base, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "scopestat:", err)
			os.Exit(1)
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// runReplay recomputes sharing statistics from a JSONL event stream.
func runReplay(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := eventlog.ReadJSONL(f)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, eventlog.Summarize(events).String())
	return err
}

// pollOnce fetches one /metrics sample and renders the status screen.
func pollOnce(base string, w io.Writer) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	series, err := parseProm(string(body))
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, renderStatus(series))
	return err
}

// parseProm parses Prometheus text exposition into a series→value
// map keyed by the full series name including its label suffix
// (comment lines skipped). It only needs to understand what
// obs.WritePrometheus emits: `name{labels} value` with integer
// values.
func parseProm(text string) (map[string]float64, error) {
	out := map[string]float64{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("scopestat: metrics line %d: %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("scopestat: metrics line %d: %v", ln+1, err)
		}
		out[line[:sp]] = v
	}
	return out, nil
}

// histFromSeries reconstructs a power-of-two HistValue from the
// cumulative _bucket/_sum/_count series of one histogram family, so
// the live view can interpolate quantiles exactly the way the server
// and the replay do. The observed maximum is not exported; the top
// non-empty bucket's upper bound stands in for it.
func histFromSeries(series map[string]float64, family string) obs.HistValue {
	hv := obs.HistValue{
		Count:   int64(series[family+"_count"]),
		Sum:     int64(series[family+"_sum"]),
		Buckets: map[int]int64{},
	}
	type bucket struct {
		upper uint64
		cum   int64
	}
	var buckets []bucket
	pfx := family + `_bucket{le="`
	for name, v := range series {
		if !strings.HasPrefix(name, pfx) {
			continue
		}
		le := strings.TrimSuffix(name[len(pfx):], `"}`)
		if le == "+Inf" {
			continue
		}
		upper, err := strconv.ParseUint(le, 10, 64)
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{upper: upper, cum: int64(v)})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].upper < buckets[j].upper })
	prev := int64(0)
	for _, b := range buckets {
		if n := b.cum - prev; n > 0 {
			hv.Buckets[bucketIndex(b.upper)] = n
			hv.Max = int64(b.upper)
		}
		prev = b.cum
	}
	return hv
}

// bucketIndex inverts the exposition's upper bound (2^i − 1) back to
// the power-of-two bucket index.
func bucketIndex(upper uint64) int {
	i := 0
	for upper > 0 {
		upper >>= 1
		i++
	}
	return i
}

// renderStatus formats the one-screen live view from a parsed sample.
func renderStatus(series map[string]float64) string {
	c := func(name string) int64 { return int64(series["scope_"+name]) }
	hits, misses := c("share_cache_hits"), c("share_cache_misses")
	hitRatio := 0.0
	if hits+misses > 0 {
		hitRatio = float64(hits) / float64(hits+misses)
	}
	requests := c("serve_requests")
	foldRate := 0.0
	if requests > 0 {
		foldRate = float64(c("serve_folded")) / float64(requests)
	}
	lat := histFromSeries(series, "scope_serve_latency_us")
	var b strings.Builder
	fmt.Fprintf(&b, "scoped @ %s\n", time.Now().Format(time.TimeOnly))
	fmt.Fprintf(&b, "  requests %-10d errors %-8d rejected %-8d batches %d\n",
		requests, c("serve_errors"), c("serve_rejected"), c("serve_batches"))
	fmt.Fprintf(&b, "  hit ratio %.1f%%  (hits %d / misses %d)   fold rate %.1f%%\n",
		hitRatio*100, hits, misses, foldRate*100)
	fmt.Fprintf(&b, "  cache: %d entries, %d bytes; admitted %d, evicted %d, invalidated %d, quota-rejected %d\n",
		c("share_cache_entries"), c("share_cache_bytes"), c("share_admitted"),
		c("share_cache_evictions"), c("share_cache_invalidations"), c("share_quota_rejected"))
	fmt.Fprintf(&b, "  exec: %d spills, %d exchanges, %d cache reads\n",
		c("exec_spills"), c("exec_exchanges"), c("exec_cache_reads"))
	fmt.Fprintf(&b, "  latency: p50 %s  p99 %s  (n=%d)\n",
		time.Duration(lat.Quantile(0.50))*time.Microsecond,
		time.Duration(lat.Quantile(0.99))*time.Microsecond,
		lat.Count)
	if mqo := c("serve_mqo_chosen"); mqo > 0 || c("serve_mqo_batches") > 0 {
		fmt.Fprintf(&b, "  mqo: %d batches, %d chosen (%d bytes)\n",
			c("serve_mqo_batches"), mqo, c("serve_mqo_chosen_bytes"))
	}
	return b.String()
}
