package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestReplayFixture replays the committed 20-event fixture (generated
// from a deterministic sequential scoped run of the paper's S1–S4
// scripts, 5 rounds) and pins the recomputed sharing statistics.
func TestReplayFixture(t *testing.T) {
	var b strings.Builder
	if err := runReplay("testdata/events.jsonl", &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "events=20 errors=0 ") {
		t.Errorf("replay header wrong: %q", out)
	}
	// Round 1 misses once per distinct shared aggregation, rounds 2-5
	// hit; the exact totals are pinned by the fixture.
	for _, want := range []string{"hits=", "misses=", "fold_rate=0.0%", "tenants: alice=5 bob=5 carol=5 dave=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}
}

func TestReplayMissingFile(t *testing.T) {
	if err := runReplay("testdata/nope.jsonl", &strings.Builder{}); err == nil {
		t.Fatal("missing file did not error")
	}
}

// TestParseProm round-trips a registry snapshot through the wire
// format: render with WritePrometheus, parse, and check the series.
func TestParseProm(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("share.cache_hits").Add(30)
	r.Counter("share.cache_misses").Add(10)
	r.Counter("serve.requests").Add(40)
	r.Counter("serve.folded").Add(4)
	h := r.Histogram("serve.latency_us")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v * 10)
	}
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b, "scope"); err != nil {
		t.Fatal(err)
	}
	series, err := parseProm(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if series["scope_share_cache_hits"] != 30 || series["scope_serve_requests"] != 40 {
		t.Errorf("parsed series wrong: %v", series)
	}
	// The reconstructed histogram matches the server-side one bucket
	// for bucket, so quantiles agree.
	got := histFromSeries(series, "scope_serve_latency_us")
	want := r.Snapshot().Hists["serve.latency_us"]
	if got.Count != want.Count || got.Sum != want.Sum || len(got.Buckets) != len(want.Buckets) {
		t.Fatalf("reconstructed histogram %+v, want %+v", got, want)
	}
	for i, n := range want.Buckets {
		if got.Buckets[i] != n {
			t.Errorf("bucket %d: %d, want %d", i, got.Buckets[i], n)
		}
	}
	if p50, w50 := got.Quantile(0.5), want.Quantile(0.5); p50 < w50/2 || p50 > w50*2 {
		t.Errorf("p50 %g far from server-side %g", p50, w50)
	}
}

func TestParsePromMalformed(t *testing.T) {
	if _, err := parseProm("scope_x notanumber"); err == nil {
		t.Fatal("malformed value accepted")
	}
}

// TestRenderStatus checks the live view computes ratios from the
// parsed sample.
func TestRenderStatus(t *testing.T) {
	series := map[string]float64{
		"scope_share_cache_hits":                   30,
		"scope_share_cache_misses":                 10,
		"scope_serve_requests":                     40,
		"scope_serve_folded":                       10,
		"scope_share_cache_entries":                3,
		"scope_exec_spills":                        2,
		"scope_serve_mqo_batches":                  1,
		"scope_serve_mqo_chosen":                   2,
		`scope_serve_latency_us_bucket{le="1023"}`: 40,
		"scope_serve_latency_us_sum":               20000,
		"scope_serve_latency_us_count":             40,
	}
	out := renderStatus(series)
	for _, want := range []string{
		"hit ratio 75.0%", "fold rate 25.0%", "requests 40", "2 spills", "mqo: 1 batches, 2 chosen",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("status missing %q:\n%s", want, out)
		}
	}
}

func TestBucketIndex(t *testing.T) {
	cases := map[uint64]int{1: 1, 3: 2, 7: 3, 1023: 10}
	for upper, want := range cases {
		if got := bucketIndex(upper); got != want {
			t.Errorf("bucketIndex(%d) = %d, want %d", upper, got, want)
		}
	}
}
