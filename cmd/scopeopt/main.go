// Command scopeopt optimizes a SCOPE script with and without the
// common-subexpression framework and prints the plans and estimated
// costs.
//
// Usage:
//
//	scopeopt -script s1            # one of: s1 s2 s3 s4 fig5 ls1 ls2
//	scopeopt -file my.scope        # a script file (uses default stats)
//	scopeopt -script s1 -dot       # emit Graphviz instead of trees
//	scopeopt -script s1 -trace out.json   # Chrome trace of the optimization
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cliflags"
	"repro/internal/datagen"
	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/stats"
)

func main() {
	script := flag.String("script", "s1", "builtin workload: s1 s2 s3 s4 fig5 ls1 ls2")
	file := flag.String("file", "", "optimize a script file instead of a builtin")
	dot := flag.Bool("dot", false, "emit Graphviz dot instead of plan trees")
	cseOnly := flag.Bool("cse-only", false, "skip the conventional baseline")
	showRounds := flag.Bool("rounds", false, "trace every phase-2 re-optimization round")
	jsonOut := flag.String("json", "", "also write the CSE plan as JSON to this file")
	lintOut := cliflags.Lint(flag.CommandLine)
	traceOut := cliflags.Trace(flag.CommandLine)
	flag.Parse()

	w, err := workload(*script, *file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scopeopt:", err)
		os.Exit(1)
	}
	cfg := bench.DefaultConfig()
	if *traceOut != "" {
		cfg.Tracer = obs.NewTracer()
	}

	if !*cseOnly {
		conv, err := bench.RunOne(w, false, cfg)
		exitOn(err)
		showLint(*lintOut, conv)
		show("conventional optimization (no CSE)", conv, *dot)
	}
	cse, err := bench.RunOne(w, true, cfg)
	exitOn(err)
	showLint(*lintOut, cse)
	show("exploiting common subexpressions", cse, *dot)
	fmt.Printf("stats (duration=%v):\n%s", cse.Duration, cse.Stats)
	if *traceOut != "" {
		exitOn(cfg.Tracer.WriteFile(*traceOut))
		fmt.Printf("trace written to %s (%d spans)\n", *traceOut, cfg.Tracer.Len())
	}
	if *jsonOut != "" {
		data, err := plan.MarshalPlan(cse.Plan)
		exitOn(err)
		exitOn(os.WriteFile(*jsonOut, data, 0o644))
		fmt.Printf("plan written to %s (%d bytes)\n", *jsonOut, len(data))
	}
	if *showRounds {
		fmt.Println("\nphase-2 rounds (pins enforced at shared groups → DAG cost):")
		for i, r := range cse.Rounds {
			mark := " "
			switch {
			case r.Best:
				mark = "*"
			case r.Pruned:
				mark = "x" // aborted by the branch-and-bound cost bound
			case r.Fallback:
				mark = "!"
			}
			fmt.Printf("%s round %3d @G%-4d %-40s cost=%.0f\n", mark, i+1, r.LCA, r.Pins, r.Cost)
		}
	}
}

func workload(name, file string) (*datagen.Workload, error) {
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		w := &datagen.Workload{Name: file, Script: string(src), Cat: stats.NewCatalog()}
		if _, err := logical.BuildSource(w.Script, w.Cat); err != nil {
			return nil, err
		}
		return w, nil
	}
	return bench.BuiltinWorkload(name)
}

func show(title string, res *opt.Result, dot bool) {
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("estimated cost: %.0f (phase 1: %.0f)\n", res.Cost, res.Phase1Cost)
	if dot {
		fmt.Println(plan.DOT(res.Plan, title))
	} else {
		fmt.Println(plan.Format(res.Plan))
	}
}

// showLint prints the plan's static-analysis findings (gathered by
// the bench harness's lint oracle) when -lint is set. The harness has
// already refused plans with error-severity findings, so anything
// shown here is advisory.
func showLint(enabled bool, res *opt.Result) {
	if !enabled {
		return
	}
	if len(res.Lint) == 0 {
		fmt.Println("lint: clean")
		return
	}
	for _, d := range res.Lint {
		fmt.Printf("lint: %s\n", d)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scopeopt:", err)
		os.Exit(1)
	}
}
