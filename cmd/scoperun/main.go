// Command scoperun optimizes a builtin workload and executes both the
// conventional and the CSE plan on the simulated shared-nothing
// cluster, verifying the results agree with the reference interpreter
// and reporting the metered work and wall-clock time of each plan.
//
// Usage:
//
//	scoperun -script s1 -machines 8 -workers 4
//
// -machines is the simulated cluster size (partition count) and
// -workers the real worker-pool width executing partition tasks;
// metered work and results are identical at every worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/logical"
)

func main() {
	script := flag.String("script", "s1", "builtin workload: s1 s2 s3 s4 fig5")
	machines := flag.Int("machines", 8, "simulated cluster size for execution (must be positive)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "execution worker-pool width (must be positive)")
	lintOut := flag.Bool("lint", false, "print static-analysis findings for each plan before executing it")
	flag.Parse()

	if *machines <= 0 {
		fmt.Fprintf(os.Stderr, "scoperun: -machines must be positive, got %d\n", *machines)
		os.Exit(2)
	}
	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "scoperun: -workers must be positive, got %d\n", *workers)
		os.Exit(2)
	}

	var w *datagen.Workload
	switch *script {
	case "s1":
		w = bench.Small("S1", bench.ScriptS1)
	case "s2":
		w = bench.Small("S2", bench.ScriptS2)
	case "s3":
		w = bench.Small("S3", bench.ScriptS3)
	case "s4":
		w = bench.Small("S4", bench.ScriptS4)
	case "fig5":
		w = bench.Small("Fig5", bench.ScriptFig5)
	default:
		fmt.Fprintf(os.Stderr, "scoperun: unknown script %q\n", *script)
		os.Exit(1)
	}

	// Reference result.
	mRef, err := logical.BuildSource(w.Script, w.Cat)
	exitOn(err)
	want, err := exec.Reference(mRef, w.FS)
	exitOn(err)

	cfg := bench.DefaultConfig()
	simCluster := cost.DefaultCluster()
	simCluster.Machines = *machines
	for _, cse := range []bool{false, true} {
		label := "conventional"
		if cse {
			label = "exploit-CSE "
		}
		res, err := bench.RunOne(w, cse, cfg)
		exitOn(err)
		if *lintOut {
			if len(res.Lint) == 0 {
				fmt.Printf("%s  lint: clean\n", label)
			}
			for _, d := range res.Lint {
				fmt.Printf("%s  lint: %s\n", label, d)
			}
		}
		cl, err := exec.NewCluster(*machines, w.FS)
		exitOn(err)
		cl.Workers = *workers
		start := time.Now()
		got, err := cl.Run(res.Plan)
		wall := time.Since(start)
		exitOn(err)
		ok := true
		for path, wt := range want {
			if gt := got[path]; gt == nil || !gt.Equal(wt) {
				ok = false
			}
		}
		m := cl.Metrics()
		fmt.Printf("%s  est.cost=%8.0f  disk=%8d  net=%8d  rows=%8d  exchanges=%d  spools=%d  sim=%6.2fs  wall=%9s  correct=%v\n",
			label, res.Cost, m.DiskBytesRead+m.DiskBytesWritten, m.NetBytes,
			m.RowsProcessed, m.Exchanges, m.SpoolMaterializations,
			m.SimulatedSeconds(simCluster), wall.Round(time.Microsecond), ok)
		if !ok {
			os.Exit(1)
		}
	}

	fmt.Println("\noutputs:")
	var paths []string
	for p := range want {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Printf("  %s: %d rows, schema %v\n", p, len(want[p].Rows), want[p].Schema.Names())
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoperun:", err)
		os.Exit(1)
	}
}
