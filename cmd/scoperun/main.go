// Command scoperun optimizes a builtin workload and executes both the
// conventional and the CSE plan on the simulated shared-nothing
// cluster, verifying the results agree with the reference interpreter
// and reporting the metered work and wall-clock time of each plan.
//
// Usage:
//
//	scoperun -script s1 -machines 8 -workers 4
//
// -machines is the simulated cluster size (partition count) and
// -workers the real worker-pool width executing partition tasks;
// metered work and results are identical at every worker count.
// -engine selects the vectorized columnar engine (default) or the
// row-at-a-time oracle — results and meters are bit-identical —
// and -membudget bounds each partition task's working set in bytes
// (the vector engine spills through the metered FileStore, the row
// engine fails fast).
//
// Observability:
//
//	scoperun -script s1 -trace out.json -analyze
//
// -trace writes every optimizer and executor span as Chrome
// trace_event JSON (open in chrome://tracing or Perfetto); the span
// tree is deterministic at any -workers width. -analyze reruns each
// plan in EXPLAIN ANALYZE mode and prints it annotated with estimated
// versus actual rows and bytes per node, flagging mis-estimations.
//
// Batch server mode:
//
//	scoperun -session examples/session
//
// runs every *.scope file in the directory (sorted) through one
// cross-query sharing session over the builtin micro dataset,
// reporting per-script cache hits, misses, admissions, and the bytes
// saved versus a cache-disabled run of the same script.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cliflags"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/share"
)

func main() {
	script := flag.String("script", "s1", "builtin workload: s1 s2 s3 s4 fig5")
	cluster := cliflags.ClusterFlags(flag.CommandLine, 8, runtime.GOMAXPROCS(0))
	engine := cliflags.Engine(flag.CommandLine, exec.EngineVector)
	memBudget := cliflags.MemBudget(flag.CommandLine)
	lintOut := cliflags.Lint(flag.CommandLine)
	traceOut := cliflags.Trace(flag.CommandLine)
	analyze := flag.Bool("analyze", false, "EXPLAIN ANALYZE: print each executed plan annotated with estimated vs actual rows and bytes")
	sessionDir := flag.String("session", "", "batch mode: run every *.scope script in this directory through one shared-result session")
	flag.Parse()

	if err := cluster.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "scoperun: %v\n", err)
		os.Exit(2)
	}
	if err := cliflags.ValidateEngine(*engine); err != nil {
		fmt.Fprintf(os.Stderr, "scoperun: %v\n", err)
		os.Exit(2)
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}

	if *sessionDir != "" {
		runSession(*sessionDir, cluster.Machines, cluster.Workers, *engine, *memBudget, tracer)
		writeTrace(tracer, *traceOut)
		return
	}

	w, err := bench.BuiltinWorkload(*script)
	exitOn(err)

	// Reference result.
	mRef, err := logical.BuildSource(w.Script, w.Cat)
	exitOn(err)
	want, err := exec.Reference(mRef, w.FS)
	exitOn(err)

	cfg := bench.DefaultConfig()
	cfg.Tracer = tracer
	simCluster := cost.DefaultCluster()
	simCluster.Machines = cluster.Machines
	for _, cse := range []bool{false, true} {
		label := "conventional"
		if cse {
			label = "exploit-CSE "
		}
		res, err := bench.RunOne(w, cse, cfg)
		exitOn(err)
		if *lintOut {
			if len(res.Lint) == 0 {
				fmt.Printf("%s  lint: clean\n", label)
			}
			for _, d := range res.Lint {
				fmt.Printf("%s  lint: %s\n", label, d)
			}
		}
		cl, err := exec.NewCluster(cluster.Machines, w.FS)
		exitOn(err)
		cl.Workers = cluster.Workers
		cl.Engine = *engine
		cl.MemBudget = *memBudget
		cl.Trace = tracer
		start := time.Now()
		var got map[string]*exec.Table
		var actuals map[*plan.Node]exec.NodeActual
		if *analyze {
			got, actuals, err = cl.RunAnalyzed(res.Plan)
		} else {
			got, err = cl.Run(res.Plan)
		}
		wall := time.Since(start)
		exitOn(err)
		ok := true
		for path, wt := range want {
			if gt := got[path]; gt == nil || !gt.Equal(wt) {
				ok = false
			}
		}
		m := cl.Metrics()
		fmt.Printf("%s  est.cost=%8.0f  disk=%8d  net=%8d  rows=%8d  exchanges=%d  spools=%d  sim=%6.2fs  wall=%9s  correct=%v\n",
			label, res.Cost, m.DiskBytesRead+m.DiskBytesWritten, m.NetBytes,
			m.RowsProcessed, m.Exchanges, m.SpoolMaterializations,
			m.SimulatedSeconds(simCluster), wall.Round(time.Microsecond), ok)
		if *analyze {
			an := exec.NewAnalysis(res.Plan, actuals, 0)
			an.Engine = *engine
			an.MemBudget = *memBudget
			fmt.Printf("\n== %s EXPLAIN ANALYZE ==\n%s\n", strings.TrimSpace(label), an)
		}
		if !ok {
			os.Exit(1)
		}
	}
	writeTrace(tracer, *traceOut)

	fmt.Println("\noutputs:")
	var paths []string
	for p := range want {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Printf("  %s: %d rows, schema %v\n", p, len(want[p].Rows), want[p].Schema.Names())
	}
}

// writeTrace exports the collected spans as Chrome trace_event JSON.
// No-op when tracing is off.
func writeTrace(tr *obs.Tracer, path string) {
	if tr == nil || path == "" {
		return
	}
	exitOn(tr.WriteFile(path))
	fmt.Printf("trace written to %s (%d spans)\n", path, tr.Len())
}

// runSession is the batch server mode: every *.scope script in dir,
// in sorted order, runs through one share.Session over the builtin
// micro dataset (test.log / test2.log), so later scripts can serve
// common subexpressions from earlier scripts' admitted results. Each
// script is also executed cache-disabled against an identical cold
// dataset; the difference in metered disk+net bytes is what sharing
// saved, and the outputs of the two runs must agree bit for bit.
func runSession(dir string, machines, workers int, engine string, memBudget int64, tracer *obs.Tracer) {
	entries, err := os.ReadDir(dir)
	exitOn(err)
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".scope") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "scoperun: no .scope scripts in %s\n", dir)
		os.Exit(1)
	}

	// Same generator, same seed: the warm and cold datasets are
	// identical, but the cold side never sees the session cache.
	warm := bench.Small("session", "")
	cold := bench.Small("session-cold", "")
	reg := obs.NewRegistry()
	sess, err := share.NewSession(share.Config{
		Catalog: warm.Cat, FS: warm.FS, Machines: machines, Workers: workers,
		Engine: engine, MemBudget: memBudget,
		Tracer: tracer, Obs: reg,
	})
	exitOn(err)

	fmt.Printf("session: %d scripts from %s on %d machines\n\n", len(names), dir, machines)
	var warmBytes, coldBytes int64
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		exitOn(err)
		rep, err := sess.Run(string(src))
		exitOn(err)

		m, err := logical.BuildSource(string(src), cold.Cat)
		exitOn(err)
		res, err := opt.Optimize(m, opt.DefaultOptions())
		exitOn(err)
		cl, err := exec.NewCluster(machines, cold.FS)
		exitOn(err)
		cl.Workers = workers
		cl.Engine = engine
		cl.MemBudget = memBudget
		want, err := cl.Run(res.Plan)
		exitOn(err)
		cm := cl.Metrics()

		ok := len(want) == len(rep.Outputs)
		for p, wt := range want {
			if gt := rep.Outputs[p]; gt == nil || !gt.Equal(wt) {
				ok = false
			}
		}
		wb := rep.Metrics.DiskBytesRead + rep.Metrics.NetBytes
		cb := cm.DiskBytesRead + cm.NetBytes
		warmBytes += wb
		coldBytes += cb
		fmt.Printf("%-22s hits=%d  misses=%d  admitted=%d  cacheRead=%8d  savedBytes=%8d  correct=%v\n",
			name, rep.CacheHits, rep.CacheMisses, rep.Admitted,
			rep.Metrics.CacheBytesRead, cb-wb, ok)
		if !ok {
			os.Exit(1)
		}
	}
	fmt.Printf("\nsession metrics:\n%s", reg.Snapshot())
	fmt.Printf("total: warm disk+net=%d  cold disk+net=%d  saved=%d\n",
		warmBytes, coldBytes, coldBytes-warmBytes)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoperun:", err)
		os.Exit(1)
	}
}
