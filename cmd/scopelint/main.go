// Command scopelint runs the repository's static-analysis catalog
// over SCOPE scripts and the plans the optimizer produces for them:
// the script analyzers (S1 unused/shadowed assignments, S2 unknown
// columns, S3 dead statements), the global sharing invariants of the
// CSE framework (P1–P5), and the local physical-soundness checks
// (V1–V7). Sharing bugs are silent cost regressions rather than wrong
// answers, which is exactly what execution-based testing cannot catch
// — scopelint exists to catch them statically.
//
// Usage:
//
//	scopelint my.scope other.scope   # lint script files (default stats)
//	scopelint -script s1             # lint a builtin workload
//	scopelint -json my.scope         # machine-readable findings
//	scopelint -source-only my.scope  # skip optimization and plan checks
//	scopelint -disable P4,S2 my.scope # drop findings by code
//
// Individual findings are suppressed in the script itself with a
// `//lint:ignore CODE reason` comment on the flagged line or the line
// above; the S4 analyzer rejects malformed, unknown, or unused
// directives.
//
// The exit status is 1 when any finding is reported, 2 on usage or
// optimizer errors (including an unknown code in -disable), and 0
// when every target is clean.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/datagen"
	"repro/internal/lint"
	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scopelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	builtin := fs.String("script", "", "lint a builtin workload: s1 s2 s3 s4 fig5 ls1 ls2")
	sourceOnly := fs.Bool("source-only", false, "run only the script analyzers, skip optimization")
	noCSE := fs.Bool("nocse", false, "lint the conventional plan instead of the CSE plan")
	disable := fs.String("disable", "", "comma-separated diagnostic codes to drop from the report (e.g. P4,S2)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	disabled, err := parseDisable(*disable)
	if err != nil {
		fmt.Fprintln(stderr, "scopelint:", err)
		return 2
	}

	var targets []*datagen.Workload
	if *builtin != "" {
		w, err := bench.BuiltinWorkload(*builtin)
		if err != nil {
			fmt.Fprintln(stderr, "scopelint:", err)
			return 2
		}
		targets = append(targets, w)
	}
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "scopelint:", err)
			return 2
		}
		targets = append(targets, &datagen.Workload{Name: path, Script: string(src), Cat: stats.NewCatalog()})
	}
	if len(targets) == 0 {
		fmt.Fprintln(stderr, "scopelint: no targets; pass script files or -script <builtin>")
		fs.Usage()
		return 2
	}

	report := &lint.Report{}
	for _, w := range targets {
		r := lint.AnalyzeScriptSource(w.Script, w.Name)
		report.Merge(r)
		if *sourceOnly || r.Errors() > 0 {
			continue // an unparsable or unbound script has no plan to lint
		}
		m, err := logical.BuildSource(w.Script, w.Cat)
		if err != nil {
			fmt.Fprintf(stderr, "scopelint: %s: %v\n", w.Name, err)
			return 2
		}
		opts := opt.DefaultOptions()
		opts.EnableCSE = !*noCSE
		opts.Lint = true
		res, err := opt.Optimize(m, opts)
		if err != nil {
			fmt.Fprintf(stderr, "scopelint: %s: optimize: %v\n", w.Name, err)
			return 2
		}
		for _, d := range res.Lint {
			d.Pos = w.Name + ": " + d.Pos
			report.Diags = append(report.Diags, d)
		}
	}
	report = report.Filter(disabled...)
	// Human output ranks by severity; -json output is diffed across
	// runs and sorts by file so the order is reproducible even when
	// two targets produce findings of equal severity.
	if *jsonOut {
		report.SortByFile()
	} else {
		report.Sort()
	}

	if *jsonOut {
		data, err := report.JSON()
		if err != nil {
			fmt.Fprintln(stderr, "scopelint:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
	} else {
		for _, d := range report.Diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if !report.Empty() {
		if !*jsonOut {
			fmt.Fprintf(stdout, "%d finding(s)\n", len(report.Diags))
		}
		return 1
	}
	return 0
}

// parseDisable splits and validates a -disable value against the full
// registered code set (script + plan + reserved + validation). An
// unknown code is a usage error: a typo like -disable P9 silently
// disabling nothing would defeat the flag's purpose.
func parseDisable(value string) ([]string, error) {
	if value == "" {
		return nil, nil
	}
	known := map[string]bool{}
	all := append(lint.Codes(), opt.ValidationCodes()...)
	for _, c := range all {
		known[c] = true
	}
	var out []string
	for _, c := range strings.Split(value, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		if !known[c] {
			return nil, fmt.Errorf("-disable: unknown diagnostic code %q (registered: %s)",
				c, strings.Join(all, " "))
		}
		out = append(out, c)
	}
	return out, nil
}
