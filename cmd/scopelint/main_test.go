package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuiltinWorkloadsClean(t *testing.T) {
	for _, name := range []string{"s1", "s2", "s3", "s4", "fig5"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-script", name}, &out, &errb); code != 0 {
			t.Errorf("%s: exit %d, stdout:\n%s\nstderr:\n%s", name, code, out.String(), errb.String())
		}
		if out.Len() != 0 {
			t.Errorf("%s: clean run should print nothing, got %q", name, out.String())
		}
	}
}

func TestFindingsExitOne(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.scope")
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R1 = SELECT A FROM R0;
R2 = SELECT B FROM R0;
OUTPUT R1 TO "o1";
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[S1]") || !strings.Contains(out.String(), "1 finding(s)") {
		t.Errorf("stdout = %q, want an S1 finding and a count", out.String())
	}
	if !strings.Contains(out.String(), path+":") {
		t.Errorf("finding should carry the file position, got %q", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.scope")
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R1 = SELECT NoSuch FROM R0;
OUTPUT R1 TO "o1";
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-json", path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var ds []struct {
		Code     string `json:"code"`
		Severity string `json:"severity"`
	}
	if err := json.Unmarshal(out.Bytes(), &ds); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	if len(ds) == 0 || ds[0].Code != "S2" || ds[0].Severity != "error" {
		t.Errorf("json findings = %+v, want a leading S2 error", ds)
	}
}

// TestJSONOrderDeterministic passes two finding-producing files in
// reverse name order and checks -json output is sorted by file, then
// code, then position — not by argument or analyzer order.
func TestJSONOrderDeterministic(t *testing.T) {
	dir := t.TempDir()
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R1 = SELECT A FROM R0;
R2 = SELECT B FROM R0;
OUTPUT R1 TO "o1";
`
	pa := filepath.Join(dir, "aa.scope")
	pb := filepath.Join(dir, "bb.scope")
	for _, p := range []string{pa, pb} {
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-json", pb, pa}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var ds []struct {
		Code string `json:"code"`
		Pos  string `json:"pos"`
	}
	if err := json.Unmarshal(out.Bytes(), &ds); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	if len(ds) < 2 {
		t.Fatalf("want findings from both files, got %+v", ds)
	}
	for i := 1; i < len(ds); i++ {
		prev := ds[i-1].Pos[:strings.IndexByte(ds[i-1].Pos, ':')]
		cur := ds[i].Pos[:strings.IndexByte(ds[i].Pos, ':')]
		if prev > cur || (prev == cur && ds[i-1].Code > ds[i].Code) {
			t.Errorf("finding %d (%s %s) sorts after %d (%s %s)",
				i-1, ds[i-1].Pos, ds[i-1].Code, i, ds[i].Pos, ds[i].Code)
		}
	}
	if !strings.HasPrefix(ds[0].Pos, pa) {
		t.Errorf("first finding is %q, want the alphabetically first file %q", ds[0].Pos, pa)
	}
}

// TestDisableFiltersFindings checks -disable suppresses findings at
// the reporting level: the same script exits 1 normally and 0 with
// its only finding's code disabled.
func TestDisableFiltersFindings(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.scope")
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R1 = SELECT A FROM R0;
R2 = SELECT B FROM R0;
OUTPUT R1 TO "o1";
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("baseline exit = %d, want 1; stderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-disable", "S1", path}, &out, &errb); code != 0 {
		t.Errorf("-disable S1: exit = %d, want 0; stdout: %s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("-disable S1: filtered run should print nothing, got %q", out.String())
	}
}

// TestDisableUnknownCode pins the contract that a typo in -disable is
// a usage error, not a silent no-op.
func TestDisableUnknownCode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-disable", "S1,Q9", "-script", "s1"}, &out, &errb); code != 2 {
		t.Fatalf("unknown disable code: exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "Q9") {
		t.Errorf("stderr should name the unknown code, got %q", errb.String())
	}
}

// TestIgnoreDirectiveEndToEnd runs a file whose sole finding is
// suppressed by a //lint:ignore comment through the CLI.
func TestIgnoreDirectiveEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suppressed.scope")
	src := `
R0 = EXTRACT A,B FROM "test.log" USING LogExtractor;
R1 = SELECT A FROM R0;
//lint:ignore S1 kept to demonstrate suppression
R2 = SELECT B FROM R0;
OUTPUT R1 TO "o1";
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Errorf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestSourceOnlySkipsPlans(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-source-only", "-script", "s1"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, errb.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no targets: exit = %d, want 2", code)
	}
	if code := run([]string{"-script", "nope"}, &out, &errb); code != 2 {
		t.Errorf("unknown builtin: exit = %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.scope")}, &out, &errb); code != 2 {
		t.Errorf("missing file: exit = %d, want 2", code)
	}
}
