// Command benchrepro regenerates the paper's evaluation artifacts:
//
//	benchrepro -fig 7        Fig. 7 estimated-cost comparison table
//	benchrepro -fig 8        Fig. 8 plan trees for S1
//	benchrepro -fig rounds     Sec. VIII-A round-count reduction
//	benchrepro -fig budget     Sec. VIII-B/C ranking under a budget
//	benchrepro -fig baselines  conventional vs local-sharing vs cost-based
//	benchrepro -fig exec       wall-clock vs simulated execution time
//	benchrepro -fig opt        optimizer wall-clock + round-engine counters (BENCH_opt.json)
//	benchrepro -fig analyze    estimated vs actual row accuracy (EXPLAIN ANALYZE sweep)
//	benchrepro -fig serve      multi-tenant service concurrency sweep (BENCH_serve.json)
//	benchrepro -fig mqo        workload-level MQO ablation: per-script greedy vs global selection (BENCH_mqo.json)
//	benchrepro -fig vec        vectorized executor: row vs vector throughput + spill ablation (BENCH_vec.json)
//	benchrepro -fig all        everything
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cliflags"
)

func main() {
	fig := flag.String("fig", "all", "which artifact: 7, 8, rounds, budget, baselines, exec, opt, analyze, serve, mqo, vec, all")
	machines := cliflags.Machines(flag.CommandLine, 5)
	workers := cliflags.WorkersList(flag.CommandLine, "1,4")
	engine := cliflags.Engine(flag.CommandLine, "vector")
	memBudget := cliflags.MemBudget(flag.CommandLine)
	out := flag.String("out", "BENCH_opt.json", "output path for the -fig opt artifact")
	iters := flag.Int("iters", 3, "optimize iterations per configuration for -fig opt (fastest wins)")
	serveOut := flag.String("serveout", "BENCH_serve.json", "output path for the -fig serve artifact")
	mqoOut := flag.String("mqoout", "BENCH_mqo.json", "output path for the -fig mqo artifact")
	vecOut := flag.String("vecout", "BENCH_vec.json", "output path for the -fig vec artifact")
	vecRows := flag.Int64("vecrows", 1_000_000, "input rows per table for -fig vec")
	vecIters := flag.Int("veciters", 2, "runs per engine per kernel for -fig vec (fastest wins)")
	clients := flag.String("clients", "1,2,4,8,16", "client-concurrency levels for -fig serve")
	rounds := flag.Int("rounds", 3, "submission rounds per client for -fig serve")
	serveEvents := flag.String("serveevents", "",
		"also write the last serve level's query event log (JSONL, replayable with scopestat -replay) to this path")
	flag.Parse()
	if err := cliflags.ValidateEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "benchrepro:", err)
		os.Exit(2)
	}
	cfg := bench.DefaultConfig()
	// -engine/-membudget steer the figures that execute plans (exec,
	// analyze); -fig vec always measures both engines against each
	// other.
	cfg.Engine = *engine
	cfg.MemBudget = *memBudget

	run := map[string]func() error{
		"7": func() error {
			rows, err := bench.Fig7(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Fig. 7 — estimated plan cost, conventional vs exploiting CSEs")
			fmt.Println("(paper column = savings reported in the paper)")
			fmt.Print(bench.FormatFig7(rows))
			return nil
		},
		"8": func() error {
			conv, cse, err := bench.Fig8(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Fig. 8(a) — S1, conventional optimization:")
			fmt.Println(conv)
			fmt.Println("Fig. 8(b) — S1, exploiting common subexpressions:")
			fmt.Println(cse)
			return nil
		},
		"rounds": func() error {
			rows, err := bench.RoundsFig5(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Sec. VIII-A — rounds at the shared LCA of the Fig. 5 script")
			fmt.Print(bench.FormatRounds(rows))
			return nil
		},
		"baselines": func() error {
			rows, err := bench.Baselines(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Related-work comparison — no sharing vs local-optimal sharing [10,11,12] vs cost-based (this paper)")
			fmt.Print(bench.FormatBaselines(rows))
			return nil
		},
		"budget": func() error {
			rows, err := bench.RankingUnderBudget(bench.Small("Ranking", bench.ScriptRanking),
				[]int{1, 2, 4, 1024}, cfg)
			if err != nil {
				return err
			}
			fmt.Println("Sec. VIII-B/C — ranked vs recording-order rounds under a budget")
			fmt.Print(bench.FormatBudget(rows))
			return nil
		},
		"analyze": func() error {
			rows, snap, err := bench.Accuracy(*machines, cfg)
			if err != nil {
				return err
			}
			fmt.Printf("EXPLAIN ANALYZE — estimated vs actual rows per plan node, %d machines\n", *machines)
			fmt.Print(bench.FormatAccuracy(rows))
			fmt.Printf("\naggregate metrics over the analyzed runs:\n%s", snap)
			return nil
		},
		"exec": func() error {
			wc, err := cliflags.ParseWorkersList(*workers)
			if err != nil {
				return err
			}
			rows, err := bench.ExecTimings(*machines, wc, cfg)
			if err != nil {
				return err
			}
			fmt.Printf("Execution — wall-clock vs simulated seconds, %d machines, workers %s\n",
				*machines, *workers)
			fmt.Print(bench.FormatExec(rows))
			return nil
		},
		"opt": func() error {
			rep, err := bench.OptTimings(*iters, cfg)
			if err != nil {
				return err
			}
			fmt.Printf("Optimizer — round-engine counters and wall clock, best of %d iters\n", *iters)
			fmt.Print(bench.FormatOpt(rep))
			if err := bench.WriteOptJSON(rep, *out); err != nil {
				return err
			}
			if err := bench.ValidateOptJSON(*out); err != nil {
				return err
			}
			fmt.Printf("%s: schema ok (%d rows)\n", *out, len(rep.Rows))
			return nil
		},
		"serve": func() error {
			levels, err := cliflags.ParseWorkersList(*clients)
			if err != nil {
				return err
			}
			rep, err := bench.ServeBench(levels, *rounds, *machines, 0)
			if err != nil {
				return err
			}
			fmt.Printf("Service — concurrent multi-tenant clients over one shared session, %d machines, %d rounds\n",
				*machines, rep.Rounds)
			fmt.Print(bench.FormatServe(rep))
			if err := bench.WriteServeJSON(rep, *serveOut); err != nil {
				return err
			}
			if err := bench.ValidateServeJSON(*serveOut); err != nil {
				return err
			}
			fmt.Printf("%s: schema ok (%d levels)\n", *serveOut, len(rep.Rows))
			if *serveEvents != "" {
				if err := os.WriteFile(*serveEvents, rep.EventsJSONL, 0o644); err != nil {
					return err
				}
				fmt.Printf("%s: %d event bytes (scopestat -replay %s)\n",
					*serveEvents, len(rep.EventsJSONL), *serveEvents)
			}
			return nil
		},
		"mqo": func() error {
			rep, err := bench.MQOBench(*machines, 0)
			if err != nil {
				return err
			}
			fmt.Printf("MQO ablation — per-script greedy vs global workload selection, %d machines\n", *machines)
			fmt.Print(bench.FormatMQO(rep))
			if err := bench.WriteMQOJSON(rep, *mqoOut); err != nil {
				return err
			}
			if err := bench.ValidateMQOJSON(*mqoOut); err != nil {
				return err
			}
			fmt.Printf("%s: schema ok (%d rows)\n", *mqoOut, len(rep.Rows))
			return nil
		},
		"vec": func() error {
			rep, err := bench.VecBench(*vecRows, *vecIters, *machines)
			if err != nil {
				return err
			}
			fmt.Printf("Vectorized executor — row vs vector engine, %d rows, %d machines, best of %d\n",
				rep.Rows, rep.Machines, rep.Iters)
			fmt.Print(bench.FormatVec(rep))
			if err := bench.WriteVecJSON(rep, *vecOut); err != nil {
				return err
			}
			if err := bench.ValidateVecJSON(*vecOut); err != nil {
				return err
			}
			fmt.Printf("%s: schema ok (%d kernels, %d spill cells)\n", *vecOut, len(rep.Kernels), len(rep.Spill))
			return nil
		},
	}

	var order []string
	if *fig == "all" {
		order = []string{"7", "8", "rounds", "budget", "baselines", "exec", "opt", "analyze", "serve", "mqo", "vec"}
	} else {
		order = []string{*fig}
	}
	for i, f := range order {
		fn, ok := run[f]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchrepro: unknown figure %q\n", f)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		if err := fn(); err != nil {
			fmt.Fprintln(os.Stderr, "benchrepro:", err)
			os.Exit(1)
		}
	}
}
