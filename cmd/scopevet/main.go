// Command scopevet runs the repository's Go-source analyzer suite —
// the source-level counterpart of scopelint's plan/script catalog. It
// mechanically enforces the disciplines the repo's correctness claims
// rest on:
//
//	rangemap   map iteration order must not reach output, emission,
//	           or an unsorted slice (bit-identical at any -workers)
//	nondet     no wall clock, math/rand, or %p in the
//	           deterministic-output packages (allowlisted metering
//	           sites aside)
//	rawio      exec and share do file IO through the metered
//	           FileStore, never package os
//	lockheld   fields annotated `// guarded by mu` are accessed only
//	           with the mutex acquired
//	diagcode   every lint diagnostic code is registered in the P/S/V
//	           catalogs, with no duplicates
//
// Usage:
//
//	scopevet ./...            # analyze packages (default ./...)
//	scopevet -json ./...      # machine-readable findings
//	scopevet -list            # print the analyzer catalog
//
// Findings are suppressed in source with
// `//scopevet:ignore <analyzer> <reason>` on the flagged line or the
// line above; unused or malformed directives are themselves findings.
// The exit status is 1 when any finding survives, 2 on usage or load
// errors, and 0 when the tree is clean. check.sh runs `scopevet
// ./...` as a gate leg, so the tree stays clean from here on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scopevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzer catalog and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := vet.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "scopevet:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := vet.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "scopevet:", err)
		return 2
	}
	res, err := vet.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "scopevet:", err)
		return 2
	}
	if *jsonOut {
		type finding struct {
			Analyzer string `json:"analyzer"`
			Pos      string `json:"pos"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(res.Diags))
		for _, d := range res.Diags {
			out = append(out, finding{Analyzer: d.Analyzer, Pos: d.Pos.String(), Message: d.Message})
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "scopevet:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
	} else {
		for _, d := range res.Diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(res.Diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "%d finding(s)", len(res.Diags))
			if res.Suppressed > 0 {
				fmt.Fprintf(stdout, ", %d suppressed", res.Suppressed)
			}
			fmt.Fprintln(stdout)
		}
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod. Loading and import resolution both need to run from inside
// the module.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s; run scopevet from inside the module", dir)
		}
		dir = parent
	}
}
