package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListCatalog(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, name := range []string{"rangemap", "nondet", "rawio", "lockheld", "diagcode"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exited %d, want 2", code)
	}
}

// TestCleanPackage analyzes one small in-repo package end to end: the
// tree is kept scopevet-clean, so the run must exit 0, and -json must
// emit a valid (empty) array.
func TestCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./internal/relop"}, &out, &errb); code != 0 {
		t.Fatalf("exited %d: %s%s", code, out.String(), errb.String())
	}
	var findings []map[string]string
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Errorf("expected a clean package, got %v", findings)
	}
}
