// Command scopemqo is the workload-level multi-query optimizer CLI:
// it compiles every *.scope script in a directory into one merged
// AND-OR DAG, chooses a global materialization set under a storage
// budget, and (by default) enacts the choice through a shared-result
// session — verifying every script's output stays bit-identical to an
// independent cold run.
//
// Usage:
//
//	scopemqo -session examples/session -budget 0
//
// Flags:
//
//	-session  directory of *.scope scripts forming the workload batch
//	-budget   storage budget in estimated artifact bytes (0 = unlimited)
//	-mode     selection algorithm: global (greedy guarded by the
//	          per-script baseline), greedy, per-script, exhaustive
//	-enact    run the batch through a live session and verify outputs
//	          bit-identical to independent cold runs (default true)
//
// The tool prints the merged DAG's sharing candidates, the chosen set
// with its estimated workload cost against the nothing-materialized
// base, and — when enacting — per-script cache traffic. It exits
// nonzero on any output mismatch and prints "mqo ok" on success (the
// marker check.sh greps for).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/cliflags"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/mqo"
	"repro/internal/opt"
	"repro/internal/share"
)

func main() {
	dir := flag.String("session", "examples/session", "directory of *.scope scripts forming the workload batch")
	budget := flag.Int64("budget", 0, "storage budget in estimated artifact bytes (0 = unlimited)")
	mode := flag.String("mode", "global", "selection algorithm: global, greedy, per-script, exhaustive")
	enact := flag.Bool("enact", true, "enact the selection through a session and verify bit-identical outputs")
	cluster := cliflags.ClusterFlags(flag.CommandLine, 8, runtime.GOMAXPROCS(0))
	flag.Parse()
	exitOn(cluster.Validate())

	scripts := loadScripts(*dir)
	env := bench.Small("mqo", "")
	dag, err := mqo.BuildDAG(scripts, env.Cat)
	exitOn(err)

	sess, err := share.NewSession(share.Config{
		Catalog: env.Cat, FS: env.FS,
		Machines: cluster.Machines, Workers: cluster.Workers,
	})
	exitOn(err)
	ev := mqo.NewEvaluator(dag, sess.Options())
	cfg := mqo.Config{Budget: *budget}

	fmt.Printf("workload: %d scripts, %d merged groups, %d sharing candidates\n",
		len(dag.Scripts), len(dag.Groups), len(dag.Candidates))
	for _, g := range dag.Candidates {
		fmt.Printf("  candidate %016x %-10s scripts=%v  ~%d bytes\n",
			g.Key.FP, g.Kind, g.Scripts, g.Bytes())
	}

	var sel *mqo.Selection
	switch *mode {
	case "global":
		sel, err = mqo.Select(ev, cfg)
	case "greedy":
		sel, err = mqo.SelectGreedy(ev, cfg)
	case "per-script":
		sel, err = mqo.SelectPerScript(ev, cfg)
	case "exhaustive":
		sel, err = mqo.SelectExhaustive(ev, cfg)
	default:
		exitOn(fmt.Errorf("unknown -mode %q", *mode))
	}
	exitOn(err)

	fmt.Printf("\nselection (%s): %d of %d candidates, budget=%d\n",
		sel.Method, len(sel.Keys), len(dag.Candidates), sel.Budget)
	for _, g := range sel.Chosen {
		fmt.Printf("  chosen %016x %-10s builder=%s readers=%d\n",
			g.Key.FP, g.Kind, dag.Scripts[g.Builder()].Name, len(g.Scripts)-1)
	}
	fmt.Printf("estimated cost: base=%.0f chosen=%.0f saved=%.0f bytes=%d evals=%d\n",
		sel.Base, sel.Total, sel.Base-sel.Total, sel.Bytes, sel.Evals)

	if !*enact {
		fmt.Println("mqo ok")
		return
	}

	reps, err := mqo.Enact(context.Background(), sess, dag, sel, share.RunOpts{Tenant: "batch"})
	exitOn(err)
	fmt.Println()
	for i, rep := range reps {
		fmt.Printf("%-22s hits=%d  misses=%d  admitted=%d  cacheRead=%d\n",
			dag.Scripts[i].Name, rep.CacheHits, rep.CacheMisses,
			rep.Admitted, rep.Metrics.CacheBytesRead)
		verifyCold(dag.Scripts[i], rep, cluster.Machines, cluster.Workers)
	}
	fmt.Printf("mqo artifacts: %d bytes owned by %q\n",
		sess.Cache().OwnerBytes(share.MQOOwner), share.MQOOwner)
	fmt.Println("mqo ok")
}

// loadScripts reads every *.scope file in dir, sorted by name.
func loadScripts(dir string) []mqo.Script {
	entries, err := os.ReadDir(dir)
	exitOn(err)
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".scope") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		exitOn(fmt.Errorf("no .scope scripts in %s", dir))
	}
	scripts := make([]mqo.Script, len(names))
	for i, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		exitOn(err)
		scripts[i] = mqo.Script{Name: name, Src: string(src)}
	}
	return scripts
}

// verifyCold re-runs one script cache-disabled against an identical
// cold dataset and exits nonzero unless the enacted outputs match bit
// for bit.
func verifyCold(sc mqo.Script, rep *share.RunReport, machines, workers int) {
	cold := bench.Small("mqo-cold", "")
	m, err := logical.BuildSource(sc.Src, cold.Cat)
	exitOn(err)
	res, err := opt.Optimize(m, opt.DefaultOptions())
	exitOn(err)
	cl, err := exec.NewCluster(machines, cold.FS)
	exitOn(err)
	cl.Workers = workers
	want, err := cl.Run(res.Plan)
	exitOn(err)
	if len(want) != len(rep.Outputs) {
		exitOn(fmt.Errorf("%s: %d outputs, want %d", sc.Name, len(rep.Outputs), len(want)))
	}
	for p, wt := range want {
		if gt := rep.Outputs[p]; gt == nil || !gt.Equal(wt) {
			exitOn(fmt.Errorf("%s: output %q differs from the independent cold run", sc.Name, p))
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scopemqo:", err)
		os.Exit(1)
	}
}
