// Command scopetrace validates and summarizes the Chrome trace_event
// JSON files written by scopeopt -trace and scoperun -trace: it
// checks the file is well-formed (non-empty traceEvents, named events,
// non-negative timestamps and durations) and reports how many spans
// each subsystem contributed. CI uses it as the trace smoke gate; it
// is also the quick sanity check before loading a trace into
// chrome://tracing or Perfetto.
//
// Usage:
//
//	scopetrace out.json [more.json ...]
//
// The exit status is 1 when any file fails validation, 2 on usage
// errors, and 0 when every file is a well-formed non-empty trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scopetrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "scopetrace: no trace files; pass one or more trace_event JSON paths")
		fs.Usage()
		return 2
	}
	bad := 0
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "scopetrace:", err)
			return 2
		}
		sum, err := obs.ValidateTrace(data)
		if err != nil {
			fmt.Fprintf(stdout, "%s: INVALID: %v\n", path, err)
			bad++
			continue
		}
		fmt.Fprintf(stdout, "%s: %s\n", path, sum)
	}
	if bad > 0 {
		return 1
	}
	return 0
}
