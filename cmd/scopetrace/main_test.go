package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// writeTraceFile records a tiny two-span trace and exports it.
func writeTraceFile(t *testing.T) string {
	t.Helper()
	tr := obs.NewTracer()
	root := tr.Start(obs.Span{}, "opt", "optimize", "optimize")
	tr.Start(root, "exec", "run", "run").End()
	root.End()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidTraceExitsZero(t *testing.T) {
	path := writeTraceFile(t)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "trace ok") || !strings.Contains(out.String(), "opt=1") {
		t.Errorf("stdout = %q, want a trace-ok summary with opt span count", out.String())
	}
}

func TestInvalidTraceExitsOne(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"traceEvents":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "INVALID") {
		t.Errorf("stdout = %q, want an INVALID line", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit = %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.json")}, &out, &errb); code != 2 {
		t.Errorf("missing file: exit = %d, want 2", code)
	}
}
