// Report join: the paper's S3/S4 pattern — aggregates over a shared
// intermediate are joined back together AND output directly, so the
// least common ancestor of the shared group's consumers is the script
// root, not the join (the Fig. 3(c) subtlety). Both optimizers'
// results are executed and cross-checked.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/scope"
)

const script = `
SALES = EXTRACT Region, Product, Quarter, Amount FROM "sales.log" USING LogExtractor;
AGG = SELECT Region, Product, Quarter, Sum(Amount) as Total
      FROM SALES GROUP BY Region, Product, Quarter;
BYRP = SELECT Region, Product, Sum(Total) as RP FROM AGG GROUP BY Region, Product;
BYRQ = SELECT Region, Quarter, Sum(Total) as RQ FROM AGG GROUP BY Region, Quarter;
CROSS = SELECT BYRP.Region, Product, Quarter, RP, RQ FROM BYRP, BYRQ
        WHERE BYRP.Region = BYRQ.Region;
OUTPUT BYRP TO "by_region_product.out";
OUTPUT BYRQ TO "by_region_quarter.out";
OUTPUT CROSS TO "crossed.out";
`

func main() {
	db := scope.New()
	db.RegisterStats("sales.log", 800_000_000,
		scope.ColumnStats{Name: "Region", Distinct: 50},
		scope.ColumnStats{Name: "Product", Distinct: 10_000},
		scope.ColumnStats{Name: "Quarter", Distinct: 8},
		scope.ColumnStats{Name: "Amount", Distinct: 1 << 30},
	)
	r := rand.New(rand.NewSource(2))
	var rows [][]any
	for i := 0; i < 4000; i++ {
		rows = append(rows, []any{r.Intn(5), r.Intn(30), r.Intn(4), r.Intn(900)})
	}
	if err := db.LoadTable("sales.log", []string{"Region", "Product", "Quarter", "Amount"}, rows); err != nil {
		log.Fatal(err)
	}

	q, err := db.Compile(script)
	if err != nil {
		log.Fatal(err)
	}
	conv, err := q.Optimize(scope.WithCSE(false))
	if err != nil {
		log.Fatal(err)
	}
	cse, err := q.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional: %.0f   with CSEs: %.0f   (saving %.0f%%)\n",
		conv.EstimatedCost(), cse.EstimatedCost(),
		(1-cse.EstimatedCost()/conv.EstimatedCost())*100)
	fmt.Printf("shared groups: %d (AGG plus both aggregate reports — each feeds an OUTPUT and the join)\n\n",
		cse.Stats().SharedGroups)

	// Execute both plans; the results must agree row-for-row.
	convOut, _, err := conv.Execute(6)
	if err != nil {
		log.Fatal(err)
	}
	cseOut, xs, err := cse.Execute(6)
	if err != nil {
		log.Fatal(err)
	}
	for path := range convOut {
		if fmt.Sprint(canon(convOut[path].Rows)) != fmt.Sprint(canon(cseOut[path].Rows)) {
			log.Fatalf("plans disagree on %s", path)
		}
	}
	fmt.Printf("both plans produce identical results; CSE execution used %d exchanges and %d spools\n",
		xs.Exchanges, xs.SpoolsShared)
	paths := make([]string, 0, len(cseOut))
	for path := range cseOut {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		res := cseOut[path]
		fmt.Printf("  %-26s %5d rows  %v\n", path, len(res.Rows), res.Columns)
	}
}

// canon renders rows order-insensitively.
func canon(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r...)
	}
	sort.Strings(out)
	return out
}
