// Plan cache: optimize once, persist the physical plan as JSON, and
// later reload and execute it without re-optimizing — plus EXPLAIN
// ANALYZE to compare the optimizer's estimates against actual row
// counts.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/scope"
)

const script = `
EVENTS = EXTRACT UserId, Kind, Ms FROM "events.log" USING LogExtractor;
PERUSER = SELECT UserId, Kind, Sum(Ms) as Total, Count() as N
          FROM EVENTS GROUP BY UserId, Kind;
BYUSER = SELECT UserId, Sum(Total) as T FROM PERUSER GROUP BY UserId;
BYKIND = SELECT Kind, Sum(Total) as T, Sum(N) as Hits FROM PERUSER GROUP BY Kind;
OUTPUT BYUSER TO "by_user.out";
OUTPUT BYKIND TO "by_kind.out" ORDER BY T DESC;
`

func main() {
	db := scope.New()
	db.RegisterStats("events.log", 3_000_000_000,
		scope.ColumnStats{Name: "UserId", Distinct: 1_000_000},
		scope.ColumnStats{Name: "Kind", Distinct: 40},
		scope.ColumnStats{Name: "Ms", Distinct: 1 << 30},
	)
	r := rand.New(rand.NewSource(3))
	var rows [][]any
	for i := 0; i < 6000; i++ {
		rows = append(rows, []any{r.Intn(400), r.Intn(8), r.Intn(2000)})
	}
	if err := db.LoadTable("events.log", []string{"UserId", "Kind", "Ms"}, rows); err != nil {
		log.Fatal(err)
	}

	q, err := db.Compile(script)
	if err != nil {
		log.Fatal(err)
	}
	p, err := q.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	data, err := p.JSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized in %v, plan serialized to %d bytes of JSON\n",
		p.OptimizeTime().Round(1000), len(data))

	// ... later, or in another process: reload and run without the
	// optimizer.
	cached, err := db.LoadPlan(data)
	if err != nil {
		log.Fatal(err)
	}
	if err := cached.Validate(); err != nil {
		log.Fatal(err)
	}
	results, stats, err := cached.Execute(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cached plan executed: %d outputs, %d exchange(s), %d shared spool(s)\n",
		len(results), stats.Exchanges, stats.SpoolsShared)

	analyzed, err := p.ExplainAnalyze(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEXPLAIN ANALYZE (estimated vs actual rows):")
	fmt.Println(analyzed)
}
