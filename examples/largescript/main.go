// Large script: generates a many-statement analysis script with a
// configurable number of shared pipelines (the shape of the paper's
// proprietary LS scripts) and optimizes it under a time budget,
// showing the Sec. VIII machinery at work: independent shared groups,
// ranked rounds, and early stopping.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/scope"
)

func main() {
	pipelines := flag.Int("pipelines", 6, "number of shared pipelines")
	consumers := flag.Int("consumers", 3, "consumers per shared intermediate")
	budget := flag.Duration("budget", 10*time.Second, "optimization budget")
	flag.Parse()

	db := scope.New()
	script := generate(db, *pipelines, *consumers)
	fmt.Printf("generated script: %d statements, %d shared intermediates × %d consumers\n\n",
		strings.Count(script, ";"), *pipelines, *consumers)

	q, err := db.Compile(script)
	if err != nil {
		log.Fatal(err)
	}
	conv, err := q.Optimize(scope.WithCSE(false))
	if err != nil {
		log.Fatal(err)
	}
	cse, err := q.Optimize(scope.WithBudget(*budget))
	if err != nil {
		log.Fatal(err)
	}
	st := cse.Stats()
	fmt.Printf("conventional cost: %12.0f\n", conv.EstimatedCost())
	fmt.Printf("CSE cost:          %12.0f  (saving %.0f%%)\n",
		cse.EstimatedCost(), (1-cse.EstimatedCost()/conv.EstimatedCost())*100)
	fmt.Printf("shared groups: %d   rounds evaluated: %d   naive combinations: %d\n",
		st.SharedGroups, st.Rounds, st.NaiveRounds)
	fmt.Printf("optimization time: %v (budget %v, exhausted: %v)\n",
		cse.OptimizeTime().Round(time.Millisecond), *budget, st.BudgetExhausted)
}

// generate emits `pipelines` disjoint shared pipelines over distinct
// inputs and registers statistics for each.
func generate(db *scope.DB, pipelines, consumers int) string {
	groupings := [][]string{
		{"A", "B"}, {"B", "C"}, {"A", "C"}, {"A"}, {"B"}, {"C"}, {"A", "B", "C"},
	}
	var sb strings.Builder
	for i := 0; i < pipelines; i++ {
		file := fmt.Sprintf("logs/part%02d.log", i)
		db.RegisterStats(file, 500_000_000,
			scope.ColumnStats{Name: "A", Distinct: 20_000},
			scope.ColumnStats{Name: "B", Distinct: 5_000},
			scope.ColumnStats{Name: "C", Distinct: 50_000},
			scope.ColumnStats{Name: "D", Distinct: 1 << 40},
		)
		fmt.Fprintf(&sb, "E%d = EXTRACT A,B,C,D FROM %q USING LogExtractor;\n", i, file)
		fmt.Fprintf(&sb, "S%d = SELECT A,B,C,Sum(D) as S FROM E%d GROUP BY A,B,C;\n", i, i)
		for j := 0; j < consumers; j++ {
			keys := groupings[j%len(groupings)]
			fmt.Fprintf(&sb, "C%d_%d = SELECT %s,Sum(S) as T FROM S%d GROUP BY %s;\n",
				i, j, strings.Join(keys, ","), i, strings.Join(keys, ","))
			fmt.Fprintf(&sb, "OUTPUT C%d_%d TO \"out/p%d_%d.out\";\n", i, j, i, j)
		}
	}
	return sb.String()
}
