// Quickstart: compile a SCOPE script with a common subexpression,
// optimize it with and without the CSE framework, execute the chosen
// plan on the simulated cluster, and print the results.
package main

import (
	"fmt"
	"log"

	"repro/scope"
)

const script = `
R0 = EXTRACT A,B,C,D FROM "clicks.log" USING LogExtractor;
R = SELECT A,B,C,Sum(D) as S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) as S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) as S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "by_ab.out";
OUTPUT R2 TO "by_bc.out";
`

func main() {
	db := scope.New()

	// Statistics drive the optimizer; physical rows drive execution.
	db.RegisterStats("clicks.log", 1_000_000_000,
		scope.ColumnStats{Name: "A", Distinct: 10_000},
		scope.ColumnStats{Name: "B", Distinct: 2_000},
		scope.ColumnStats{Name: "C", Distinct: 20_000},
		scope.ColumnStats{Name: "D", Distinct: 1 << 40},
	)
	if err := db.LoadTable("clicks.log", []string{"A", "B", "C", "D"}, [][]any{
		{1, 1, 1, 10}, {1, 1, 1, 5}, {1, 1, 3, 2}, {1, 2, 2, 7},
		{2, 2, 2, 1}, {2, 2, 2, 4}, {2, 1, 3, 9}, {1, 2, 2, 3},
	}); err != nil {
		log.Fatal(err)
	}

	q, err := db.Compile(script)
	if err != nil {
		log.Fatal(err)
	}

	conventional, err := q.Optimize(scope.WithCSE(false))
	if err != nil {
		log.Fatal(err)
	}
	shared, err := q.Optimize() // CSE framework on (the default)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional plan cost: %.0f\n", conventional.EstimatedCost())
	fmt.Printf("CSE plan cost:          %.0f  (%.0f%% saving, %d shared group(s), %d rounds)\n\n",
		shared.EstimatedCost(),
		(1-shared.EstimatedCost()/conventional.EstimatedCost())*100,
		shared.Stats().SharedGroups, shared.Stats().Rounds)

	fmt.Println("chosen plan:")
	fmt.Println(shared.Explain())

	results, stats, err := shared.Execute(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed on 4 simulated machines: %d exchange(s), %d shared spool(s)\n\n",
		stats.Exchanges, stats.SpoolsShared)
	for _, path := range []string{"by_ab.out", "by_bc.out"} {
		r := results[path]
		fmt.Printf("%s %v\n", path, r.Columns)
		for _, row := range r.Rows {
			fmt.Printf("  %v\n", row)
		}
	}
}
