// Log analysis: the paper's motivating scenario — a service log is
// aggregated once and the intermediate result feeds several reports
// with conflicting partitioning needs. Shows how the optimizer's
// phase-2 rounds reconcile the requirements, and what each report
// costs under both optimizers.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/scope"
)

// Three reports over one pre-aggregated intermediate: daily per-user
// totals feed (1) per-user lifetime counts, (2) per-page traffic, and
// (3) a user×page matrix — each wanting a different partitioning.
const script = `
HITS = EXTRACT UserId, PageId, Day, Bytes FROM "web.log" USING LogExtractor;
DAILY = SELECT UserId, PageId, Day, Sum(Bytes) as Traffic, Count() as Hits
        FROM HITS GROUP BY UserId, PageId, Day;
BYUSER = SELECT UserId, Sum(Traffic) as T, Sum(Hits) as H FROM DAILY GROUP BY UserId;
BYPAGE = SELECT PageId, Sum(Traffic) as T FROM DAILY GROUP BY PageId;
MATRIX = SELECT UserId, PageId, Sum(Hits) as H FROM DAILY GROUP BY UserId, PageId;
OUTPUT BYUSER TO "by_user.out";
OUTPUT BYPAGE TO "by_page.out";
OUTPUT MATRIX TO "matrix.out";
`

func main() {
	db := scope.New()
	db.RegisterStats("web.log", 5_000_000_000,
		scope.ColumnStats{Name: "UserId", Distinct: 2_000_000},
		scope.ColumnStats{Name: "PageId", Distinct: 50_000},
		scope.ColumnStats{Name: "Day", Distinct: 365},
		scope.ColumnStats{Name: "Bytes", Distinct: 1 << 30},
	)

	// A laptop-sized sample for execution.
	r := rand.New(rand.NewSource(1))
	var rows [][]any
	for i := 0; i < 5000; i++ {
		rows = append(rows, []any{r.Intn(300), r.Intn(40), r.Intn(7), r.Intn(1500)})
	}
	if err := db.LoadTable("web.log", []string{"UserId", "PageId", "Day", "Bytes"}, rows); err != nil {
		log.Fatal(err)
	}

	q, err := db.Compile(script)
	if err != nil {
		log.Fatal(err)
	}

	conv, err := q.Optimize(scope.WithCSE(false), scope.WithSCOPEProfile())
	if err != nil {
		log.Fatal(err)
	}
	cse, err := q.Optimize(scope.WithSCOPEProfile())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("three reports over one shared daily aggregate:")
	fmt.Printf("  conventional optimizer: cost %.0f (computes DAILY three times)\n", conv.EstimatedCost())
	fmt.Printf("  CSE optimizer:          cost %.0f — %.0f%% cheaper\n",
		cse.EstimatedCost(), (1-cse.EstimatedCost()/conv.EstimatedCost())*100)
	st := cse.Stats()
	fmt.Printf("  %d shared group, %d re-optimization rounds (naive product: %d)\n\n",
		st.SharedGroups, st.Rounds, st.NaiveRounds)

	fmt.Println("shared plan (DAILY materialized once, consumers compensate locally):")
	fmt.Println(cse.Explain())

	results, xs, err := cse.Execute(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution: %d rows processed, %d exchanges, %d shared spool\n",
		xs.RowsProcessed, xs.Exchanges, xs.SpoolsShared)
	for _, p := range []string{"by_user.out", "by_page.out", "matrix.out"} {
		fmt.Printf("  %-12s %6d rows\n", p, len(results[p].Rows))
	}
}
